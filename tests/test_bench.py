"""Tests for the benchmark harness (runner, phases, renderers)."""

import pytest

from repro.bench import (
    PhaseAccumulator,
    collect_phases,
    collect_runtime,
    dominant_phase,
    measure,
    merge_accumulators,
    render_all,
    render_fig5,
    render_fig6,
    render_table3,
    render_table4,
    render_table5,
    run_use_case,
    runtime_payload,
    use_case_factory,
)
from repro.core.nedexplain import PHASES
from repro.errors import ConfigurationError
from repro.robustness.budget import Budget


@pytest.fixture(scope="module")
def crime5():
    return run_use_case("Crime5")


@pytest.fixture(scope="module")
def crime9():
    return run_use_case("Crime9")


class TestRunner:
    def test_answer_texts(self, crime5):
        assert "m3" in crime5.ned_answer_text()
        assert crime5.whynot_answer_text() == "m2"

    def test_na_text(self, crime9):
        assert crime9.whynot_answer_text() == "n.a."
        assert crime9.whynot_total_ms is None

    def test_timings_positive(self, crime5):
        assert crime5.ned_total_ms > 0
        assert crime5.whynot_total_ms is not None
        assert crime5.whynot_total_ms > 0

    def test_baseline_can_be_skipped(self):
        result = run_use_case("Crime5", run_baseline=False)
        assert result.whynot is None and not result.whynot_na

    def test_no_compatible_branch_rendered(self):
        result = run_use_case("Gov7", run_baseline=False)
        assert "{}" in result.ned_answer_text()

    def test_parallel_run_matches_sequential(self, crime5):
        """The workers knob routes through the parallel executor and
        must not change a benchmark's answers."""
        parallel = run_use_case("Crime5", workers=4)
        assert parallel.ned_answer_text() == crime5.ned_answer_text()
        assert parallel.ned.summary() == crime5.ned.summary()


class TestPhases:
    def test_accumulator(self, crime5):
        acc = PhaseAccumulator()
        acc.add(crime5.ned.phase_times_ms)
        acc.add(crime5.ned.phase_times_ms)
        assert acc.runs == 2
        assert acc.grand_total_ms == pytest.approx(
            2 * crime5.ned.total_time_ms
        )
        distribution = acc.distribution()
        assert sum(distribution.values()) == pytest.approx(100.0)

    def test_mean(self, crime5):
        acc = PhaseAccumulator()
        assert acc.mean_ms(PHASES[0]) == 0.0
        acc.add(crime5.ned.phase_times_ms)
        assert acc.mean_ms(PHASES[0]) == pytest.approx(
            crime5.ned.phase_times_ms[PHASES[0]]
        )

    def test_merge(self, crime5):
        a, b = PhaseAccumulator(), PhaseAccumulator()
        a.add(crime5.ned.phase_times_ms)
        b.add(crime5.ned.phase_times_ms)
        merged = merge_accumulators([a, b])
        assert merged.runs == 2

    def test_dominant_phase(self):
        assert dominant_phase(
            {"Initialization": 5.0, "BottomUp": 1.0}
        ) == "Initialization"


class TestRenderers:
    @pytest.fixture(scope="class")
    def some_results(self):
        return [run_use_case("Crime5"), run_use_case("Crime9")]

    def test_table3(self):
        text = render_table3()
        assert "Q8" in text and "alpha" in text

    def test_table4(self):
        text = render_table4()
        assert "Crime5" in text and "(Person.name: Hank)" in text

    def test_table5(self, some_results):
        text = render_table5(some_results)
        assert "Crime5" in text and "n.a." in text

    def test_fig5(self, some_results):
        text = render_fig5(some_results)
        for phase in PHASES:
            assert phase in text
        assert "%" in text

    def test_fig6(self, some_results):
        text = render_fig6(some_results)
        assert "Crime5" in text and "#" in text

    def test_render_all_stitches_every_section(self, some_results):
        text = render_all(some_results)
        for fragment in ("Table 4", "Table 5", "Fig. 5", "Fig. 6", "Crime5"):
            assert fragment in text, fragment


class TestRunnerErrorPaths:
    def test_unknown_use_case_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="Crime5"):
            run_use_case("Nope99")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="whynot"):
            use_case_factory("Crime5", algorithm="quantum")

    def test_measure_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            measure(
                use_case_factory("Crime5"), name="x", repeats=0
            )

    def test_measure_rejects_negative_warmup(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            measure(
                use_case_factory("Crime5"),
                name="x",
                repeats=1,
                warmup=-1,
            )

    def test_collect_phases_rejects_bad_params(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            collect_phases(repeats=0)
        with pytest.raises(ConfigurationError, match="warmup"):
            collect_phases(repeats=1, warmup=-1)

    def test_collect_runtime_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            collect_runtime(repeats=0)

    def test_budget_propagates_to_both_algorithms(self):
        """A tiny budget degrades NedExplain to a partial report and
        marks the baseline n.a. -- neither aborts the sweep."""
        result = run_use_case(
            "Gov5", budget=Budget(max_comparisons=10)
        )
        assert result.ned.partial
        assert result.whynot_na
        assert result.whynot is None
        assert result.whynot_answer_text() == "n.a."


class TestMeasureProtocol:
    def test_samples_match_repeats_and_counters_are_stable(self):
        first = measure(
            use_case_factory("Crime5"), name="c5", repeats=3, warmup=1
        )
        second = measure(
            use_case_factory("Crime5"), name="c5", repeats=2, warmup=0
        )
        assert len(first.samples_ms) == 3
        assert len(second.samples_ms) == 2
        assert all(s > 0 for s in first.samples_ms)
        # counters are a property of the algorithm, not the repeats
        assert dict(first.counters) == dict(second.counters)
        assert first.median_ms > 0
        assert first.mad_ms >= 0


class TestRuntimeSerialization:
    def test_speedup_present_when_both_measured(self):
        payload = runtime_payload(
            {"Crime5": {"ned": 2.0, "whynot": 8.0}}, scale=1
        )
        entry = payload["use_cases"]["Crime5"]
        assert entry["speedup"] == pytest.approx(4.0)
        assert "whynot_na_reason" not in entry

    def test_missing_whynot_records_reason_not_silence(self):
        payload = runtime_payload(
            {"Crime9": {"ned": 2.0}},
            scale=1,
            na_reasons={"Crime9": "unsupported"},
        )
        entry = payload["use_cases"]["Crime9"]
        assert entry["whynot_ms"] is None
        assert entry["speedup"] is None
        assert entry["whynot_na_reason"] == "unsupported"

    def test_unexplained_gap_gets_explicit_default_reason(self):
        payload = runtime_payload({"Gov6": {"ned": 2.0}}, scale=1)
        entry = payload["use_cases"]["Gov6"]
        assert entry["speedup"] is None
        assert entry["whynot_na_reason"] == "not-measured"

    def test_collect_runtime_records_unsupported_reasons(self):
        payload = collect_runtime(repeats=1, scale=1, warmup=0)
        cases = payload["use_cases"]
        # the aggregation queries the Why-Not baseline cannot trace
        assert cases["Crime9"]["whynot_na_reason"] == "unsupported"
        assert cases["Crime9"]["speedup"] is None
        # a fully-measured case carries a real speedup, no reason
        assert cases["Crime5"]["speedup"] is not None
        assert "whynot_na_reason" not in cases["Crime5"]
        assert payload["repeats"] == 1 and payload["warmup"] == 0
