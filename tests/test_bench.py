"""Tests for the benchmark harness (runner, phases, renderers)."""

import pytest

from repro.bench import (
    PhaseAccumulator,
    dominant_phase,
    merge_accumulators,
    render_fig5,
    render_fig6,
    render_table3,
    render_table4,
    render_table5,
    run_use_case,
)
from repro.core.nedexplain import PHASES


@pytest.fixture(scope="module")
def crime5():
    return run_use_case("Crime5")


@pytest.fixture(scope="module")
def crime9():
    return run_use_case("Crime9")


class TestRunner:
    def test_answer_texts(self, crime5):
        assert "m3" in crime5.ned_answer_text()
        assert crime5.whynot_answer_text() == "m2"

    def test_na_text(self, crime9):
        assert crime9.whynot_answer_text() == "n.a."
        assert crime9.whynot_total_ms is None

    def test_timings_positive(self, crime5):
        assert crime5.ned_total_ms > 0
        assert crime5.whynot_total_ms is not None
        assert crime5.whynot_total_ms > 0

    def test_baseline_can_be_skipped(self):
        result = run_use_case("Crime5", run_baseline=False)
        assert result.whynot is None and not result.whynot_na

    def test_no_compatible_branch_rendered(self):
        result = run_use_case("Gov7", run_baseline=False)
        assert "{}" in result.ned_answer_text()

    def test_parallel_run_matches_sequential(self, crime5):
        """The workers knob routes through the parallel executor and
        must not change a benchmark's answers."""
        parallel = run_use_case("Crime5", workers=4)
        assert parallel.ned_answer_text() == crime5.ned_answer_text()
        assert parallel.ned.summary() == crime5.ned.summary()


class TestPhases:
    def test_accumulator(self, crime5):
        acc = PhaseAccumulator()
        acc.add(crime5.ned.phase_times_ms)
        acc.add(crime5.ned.phase_times_ms)
        assert acc.runs == 2
        assert acc.grand_total_ms == pytest.approx(
            2 * crime5.ned.total_time_ms
        )
        distribution = acc.distribution()
        assert sum(distribution.values()) == pytest.approx(100.0)

    def test_mean(self, crime5):
        acc = PhaseAccumulator()
        assert acc.mean_ms(PHASES[0]) == 0.0
        acc.add(crime5.ned.phase_times_ms)
        assert acc.mean_ms(PHASES[0]) == pytest.approx(
            crime5.ned.phase_times_ms[PHASES[0]]
        )

    def test_merge(self, crime5):
        a, b = PhaseAccumulator(), PhaseAccumulator()
        a.add(crime5.ned.phase_times_ms)
        b.add(crime5.ned.phase_times_ms)
        merged = merge_accumulators([a, b])
        assert merged.runs == 2

    def test_dominant_phase(self):
        assert dominant_phase(
            {"Initialization": 5.0, "BottomUp": 1.0}
        ) == "Initialization"


class TestRenderers:
    @pytest.fixture(scope="class")
    def some_results(self):
        return [run_use_case("Crime5"), run_use_case("Crime9")]

    def test_table3(self):
        text = render_table3()
        assert "Q8" in text and "alpha" in text

    def test_table4(self):
        text = render_table4()
        assert "Crime5" in text and "(Person.name: Hank)" in text

    def test_table5(self, some_results):
        text = render_table5(some_results)
        assert "Crime5" in text and "n.a." in text

    def test_fig5(self, some_results):
        text = render_fig5(some_results)
        for phase in PHASES:
            assert phase in text
        assert "%" in text

    def test_fig6(self, some_results):
        text = render_fig6(some_results)
        assert "Crime5" in text and "#" in text
