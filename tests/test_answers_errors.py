"""Tests for the answer types (Defs. 2.12-2.14 renderings) and the
error hierarchy."""

import pytest

import repro.errors as errors
from repro.core import DetailedEntry, NedExplainReport, WhyNotAnswer
from repro.core.answers import merge_reports
from repro.core.whynot_question import CTuple
from repro.relational import RelationLeaf, RelationSchema, Select, attr_cmp


def _node(name: str):
    node = Select(
        RelationLeaf(RelationSchema("R", ("x",))),
        attr_cmp("R.x", "=", 1),
    )
    node.name = name
    return node


def _answer(*entries, secondary=(), **kwargs):
    return WhyNotAnswer(
        ctuple=CTuple({"R.x": 1}),
        detailed=tuple(entries),
        secondary=tuple(secondary),
        **kwargs,
    )


class TestDetailedEntry:
    def test_repr_with_tid(self):
        entry = DetailedEntry("R:1", _node("m3"))
        assert repr(entry) == "(R:1, m3)"

    def test_repr_null(self):
        assert repr(DetailedEntry(None, _node("m3"))) == "(null, m3)"

    def test_label_falls_back_to_description(self):
        node = _node("x")
        node.name = None
        assert "sigma" in DetailedEntry(None, node).subquery_label


class TestWhyNotAnswer:
    def test_condensed_dedupes_by_node(self):
        node = _node("m1")
        answer = _answer(
            DetailedEntry("a", node), DetailedEntry("b", node)
        )
        assert answer.condensed == (node,)
        assert answer.condensed_labels == ("m1",)

    def test_detailed_pairs(self):
        answer = _answer(DetailedEntry("a", _node("m1")))
        assert answer.detailed_pairs == (("a", "m1"),)

    def test_is_empty(self):
        assert _answer().is_empty()
        assert not _answer(DetailedEntry("a", _node("m1"))).is_empty()
        assert not _answer(secondary=[_node("m2")]).is_empty()

    def test_repr_flags(self):
        answer = _answer(no_compatible_data=True)
        assert "no_compatible_data" in repr(answer)


class TestNedExplainReport:
    def test_union_of_answers_dedupes(self):
        node = _node("m1")
        report = NedExplainReport(
            (
                _answer(DetailedEntry("a", node)),
                _answer(DetailedEntry("a", node)),
            )
        )
        assert len(report.detailed) == 1
        assert report.condensed == (node,)

    def test_secondary_union(self):
        node = _node("m2")
        report = NedExplainReport(
            (_answer(secondary=[node]), _answer(secondary=[node]))
        )
        assert report.secondary == (node,)
        assert report.secondary_labels == ("m2",)

    def test_total_time(self):
        report = NedExplainReport(
            (), {"Initialization": 1.0, "BottomUp": 2.0}
        )
        assert report.total_time_ms == 3.0

    def test_summary_no_compatible(self):
        report = NedExplainReport((_answer(no_compatible_data=True),))
        assert "no compatible source data" in report.summary()

    def test_summary_not_missing(self):
        report = NedExplainReport((_answer(answer_not_missing=True),))
        assert "not missing" in report.summary()

    def test_summary_empty_answer(self):
        report = NedExplainReport((_answer(),))
        assert "(empty)" in report.summary()

    def test_merge_reports(self):
        node = _node("m1")
        merged = merge_reports(
            [
                NedExplainReport(
                    (_answer(DetailedEntry("a", node)),),
                    {"BottomUp": 1.0},
                ),
                NedExplainReport((_answer(),), {"BottomUp": 2.0}),
            ]
        )
        assert len(merged.answers) == 2
        assert merged.phase_times_ms["BottomUp"] == 3.0

    def test_iteration(self):
        answers = (_answer(), _answer())
        report = NedExplainReport(answers)
        assert tuple(report) == answers


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.QueryError,
            errors.ConditionError,
            errors.RenamingError,
            errors.EvaluationError,
            errors.IntegrityError,
            errors.UnknownRelationError,
            errors.WhyNotQuestionError,
            errors.UnsupportedQueryError,
            errors.SqlSyntaxError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_renaming_error_is_query_error(self):
        assert issubclass(errors.RenamingError, errors.QueryError)

    def test_sql_error_carries_position(self):
        error = errors.SqlSyntaxError("bad token", position=7)
        assert error.position == 7
        assert "offset 7" in str(error)

    def test_sql_error_without_position(self):
        assert errors.SqlSyntaxError("bad").position is None

    def test_single_catch_all(self):
        """One except clause suffices for any library failure."""
        from repro.relational import Database

        db = Database()
        try:
            db.table("nope")
        except errors.ReproError as exc:
            assert "nope" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")
