"""Deterministic counter-based perf tests (the gate's exact layer).

Wall-clock on shared CI is noise; the work counters mirrored through
:mod:`repro.obs` (``budget.rows``, ``budget.comparisons``, cache
hits/misses, traversal steps) are exact and reproducible, so golden
values for the canonical Crime/Gov/IMDB use cases pin the *algorithmic*
cost of an explanation.  A change to any of these numbers is a real
change to the amount of work NedExplain does -- intentional ones must
update the goldens here *and* the committed gate baselines
(``python -m repro.bench.gate update``).
"""

from __future__ import annotations

import pytest

from repro.bench.gate import _batch_specs, _scaling_specs
from repro.bench.runner import measure, use_case_factory
from repro.workloads import USE_CASES

# Golden work accounting per (use case, algorithm) -- recorded with
# `measure(use_case_factory(name, algo))` at scale 1 on a fresh
# private cache, hence the cold-path miss/store pair in every entry.
GOLDEN_COUNTERS = {
    ("Crime5", "ned"): {
        "budget.comparisons": 336,
        "budget.rows": 196,
        "cache.misses": 1,
        "cache.stores": 1,
        "compatible.finds": 1,
        "evaluator.operators": 9,
        "successors.blocked": 1,
        "successors.checks": 71,
        "successors.found": 2,
        "successors.steps": 4,
    },
    ("Crime9", "ned"): {
        "budget.comparisons": 634,
        "budget.rows": 279,
        "cache.misses": 1,
        "cache.stores": 1,
        "compatible.finds": 1,
        "evaluator.operators": 9,
        "successors.blocked": 11,
        "successors.checks": 189,
        "successors.found": 38,
        "successors.steps": 5,
    },
    ("Gov5", "ned"): {
        "budget.comparisons": 6970,
        "budget.rows": 4002,
        "cache.misses": 1,
        "cache.stores": 1,
        "compatible.finds": 1,
        "evaluator.operators": 8,
        "successors.blocked": 243,
        "successors.checks": 1804,
        "successors.found": 243,
        "successors.steps": 4,
    },
    ("Gov7", "ned"): {
        "budget.comparisons": 1113,
        "budget.rows": 910,
        "cache.misses": 1,
        "cache.stores": 1,
        "compatible.finds": 2,
        "evaluator.operators": 11,
        "successors.blocked": 1,
        "successors.checks": 228,
        "successors.found": 0,
        "successors.steps": 5,
    },
    ("Imdb1", "ned"): {
        "budget.comparisons": 315,
        "budget.rows": 271,
        "cache.misses": 1,
        "cache.stores": 1,
        "compatible.finds": 1,
        "evaluator.operators": 8,
        "successors.blocked": 2,
        "successors.checks": 43,
        "successors.found": 1,
        "successors.steps": 3,
    },
    ("Imdb2", "ned"): {
        "budget.comparisons": 326,
        "budget.rows": 271,
        "cache.misses": 1,
        "cache.stores": 1,
        "compatible.finds": 1,
        "evaluator.operators": 8,
        "successors.blocked": 3,
        "successors.checks": 52,
        "successors.found": 3,
        "successors.steps": 4,
    },
    ("Crime5", "whynot"): {
        "budget.comparisons": 332,
        "budget.rows": 196,
        "cache.misses": 1,
        "cache.stores": 1,
        "evaluator.operators": 9,
    },
    ("Gov5", "whynot"): {
        "budget.comparisons": 197947,
        "budget.rows": 4002,
        "cache.misses": 1,
        "cache.stores": 1,
        "evaluator.operators": 8,
    },
}

GOLDEN_BATCH = {
    "budget.comparisons": 2657,
    "budget.rows": 361,
    "cache.hits": 11,
    "cache.misses": 1,
    "cache.stores": 1,
    "compatible.finds": 12,
    "evaluator.operators": 6,
    "successors.blocked": 6,
    "successors.checks": 2229,
    "successors.found": 184,
    "successors.steps": 34,
}

GOLDEN_SCALING = {
    "budget.comparisons": 1803,
    "budget.rows": 1201,
    "cache.misses": 1,
    "cache.stores": 1,
    "compatible.finds": 1,
    "evaluator.operators": 10,
    "successors.blocked": 1,
    "successors.checks": 361,
    "successors.found": 0,
    "successors.steps": 3,
}


def _counters(name, algorithm):
    m = measure(
        use_case_factory(name, algorithm),
        name=f"{name}.{algorithm}",
        repeats=1,
        warmup=0,
    )
    return dict(m.counters)


@pytest.mark.parametrize(
    "name,algorithm", sorted(GOLDEN_COUNTERS), ids="-".join
)
def test_golden_use_case_counters(name, algorithm):
    assert _counters(name, algorithm) == GOLDEN_COUNTERS[
        (name, algorithm)
    ]


def test_golden_batch_counters():
    """One batched run of 12 questions: exactly one evaluation
    (miss+store), every further question a cache hit."""
    (spec,) = _batch_specs()
    m = measure(spec.factory, name=spec.name, repeats=1, warmup=0)
    assert dict(m.counters) == GOLDEN_BATCH
    assert m.counters["cache.misses"] == 1
    assert m.counters["cache.hits"] == m.counters["compatible.finds"] - 1


def test_golden_scaling_counters():
    (spec,) = _scaling_specs()
    m = measure(spec.factory, name=spec.name, repeats=1, warmup=0)
    assert dict(m.counters) == GOLDEN_SCALING


def test_counters_deterministic_across_all_use_cases():
    """Every Table 4 use case yields an identical counter snapshot on
    a re-measurement -- the property the gate's exact layer rests on."""
    for uc in USE_CASES:
        first = _counters(uc.name, "ned")
        second = _counters(uc.name, "ned")
        assert first == second, uc.name
        assert first["budget.rows"] > 0
        assert first["budget.comparisons"] > 0
        assert first["cache.misses"] == 1


def test_baseline_retraces_more_than_nedexplain_on_joins():
    """The paper's Fig. 6 mechanism, stated in counters: on the
    join-heavy Gov5 the Why-Not baseline re-traces unpicked items over
    the full intermediate results, paying ~28x the comparisons of
    NedExplain's single compatible-tuple pass."""
    ned = GOLDEN_COUNTERS[("Gov5", "ned")]["budget.comparisons"]
    whynot = GOLDEN_COUNTERS[("Gov5", "whynot")]["budget.comparisons"]
    assert whynot > 20 * ned
    # same data volume flows through evaluation on both sides
    assert (
        GOLDEN_COUNTERS[("Gov5", "ned")]["budget.rows"]
        == GOLDEN_COUNTERS[("Gov5", "whynot")]["budget.rows"]
    )
