"""Integration tests: the 19 use cases of Table 4 against the paper's
Sec. 4.2 observations (the qualitative content of Table 5)."""

import pytest

from repro.bench import run_use_case
from repro.workloads import USE_CASES, USE_CASE_INDEX, use_case_setup


@pytest.fixture(scope="module")
def results():
    """Run every use case once and share the results."""
    return {uc.name: run_use_case(uc.name) for uc in USE_CASES}


def _ops(queries) -> set:
    return {q.op for q in queries}


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_use_case_expectations(results, name):
    """Assert the recorded qualitative expectation for each use case."""
    result = results[name]
    expect = USE_CASE_INDEX[name].expect
    ned = result.ned

    if expect.get("ned_nonempty"):
        assert not ned.is_empty()
    if "ned_condensed_ops" in expect:
        assert _ops(ned.condensed) == expect["ned_condensed_ops"]
    if "ned_condensed_size" in expect:
        assert len(ned.condensed) == expect["ned_condensed_size"]
    if "ned_min_detailed" in expect:
        assert len(ned.detailed) >= expect["ned_min_detailed"]
    if "ned_secondary_ops" in expect:
        assert _ops(ned.secondary) == expect["ned_secondary_ops"]
    if expect.get("ned_null_entry"):
        null_entries = [e for e in ned.detailed if e.tid is None]
        assert null_entries
        if "ned_null_op" in expect:
            assert {
                e.subquery.op for e in null_entries
            } == {expect["ned_null_op"]}
    if expect.get("ned_tid_entries"):
        assert all(e.tid is not None for e in ned.detailed)
    if "ned_answer_sets" in expect:
        assert len(ned.answers) == expect["ned_answer_sets"]
    if expect.get("ned_no_compatible_branch"):
        assert any(a.no_compatible_data for a in ned.answers)

    if expect.get("whynot_na"):
        assert result.whynot_na
    if expect.get("whynot_empty"):
        assert result.whynot is not None
        assert result.whynot.is_empty()
    if "whynot_ops" in expect:
        assert result.whynot is not None
        assert _ops(result.whynot.answers) == expect["whynot_ops"]


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_answer_genuinely_missing(results, name):
    """Sanity: no use case asks for an answer that is actually present."""
    result = results[name]
    assert not any(a.answer_not_missing for a in result.ned.answers)


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_some_explanation_or_flag(results, name):
    """NedExplain never returns silently: every use case yields picky
    subqueries, a secondary answer, or an explicit no-data flag."""
    result = results[name]
    for answer in result.ned.answers:
        assert (
            answer.detailed
            or answer.secondary
            or answer.no_compatible_data
        )


class TestSpecificStories:
    """Tighter checks for the cases Sec. 4.2 discusses in detail."""

    def test_crime5_contrast(self, results):
        """The empty-intermediate-result story: NedExplain blames the
        join and surfaces the selection as secondary; Why-Not blames
        the selection directly."""
        r = results["Crime5"]
        (answer,) = r.ned.answers
        (detail,) = answer.detailed
        assert detail.subquery.op == "join"
        assert [s.op for s in answer.secondary] == ["sigma"]
        assert r.whynot is not None
        assert [q.op for q in r.whynot.answers] == ["sigma"]

    def test_crime6_self_join_contrast(self, results):
        r = results["Crime6"]
        # NedExplain: kidnappings blocked at the crime-crime join, with
        # C2-tagged tids only
        assert all(
            e.tid.startswith("C2:") for e in r.ned.detailed
        )
        # the baseline's wrong answer is the C1 selection
        assert r.whynot is not None
        (wrong,) = r.whynot.answers
        assert wrong.op == "sigma"

    def test_crime7_split_blame(self, results):
        r = results["Crime7"]
        by_node = {}
        for entry in r.ned.detailed:
            by_node.setdefault(entry.subquery.name, set()).add(entry.tid)
        assert len(by_node) == 2
        # one of the two nodes blocks the witness Susan
        assert any(
            any(tid.startswith("W:") for tid in tids)
            for tids in by_node.values()
        )

    def test_crime8_audrey(self, results):
        r = results["Crime8"]
        (entry,) = r.ned.detailed
        assert entry.tid == "P2:51"
        assert r.whynot is not None and r.whynot.is_empty()

    def test_crime9_aggregation_condition(self, results):
        r = results["Crime9"]
        (entry,) = r.ned.detailed
        assert entry.tid is None
        assert entry.subquery.op == "sigma"

    def test_crime10_roger_below_breakpoint(self, results):
        r = results["Crime10"]
        (entry,) = r.ned.detailed
        assert entry.tid == "Person:604"
        assert entry.subquery.name == "m0"

    def test_imdb2_valid_successors(self, results):
        r = results["Imdb2"]
        tids = {e.tid for e in r.ned.detailed}
        assert tids == {"M:4", "R:245", "L:2", "L:3"}
        nodes = {e.subquery.name for e in r.ned.detailed}
        assert len(nodes) == 1  # all at the location join

    def test_gov1_christophers(self, results):
        r = results["Gov1"]
        by_node = {}
        for entry in r.ned.detailed:
            by_node.setdefault(entry.subquery.op, set()).add(entry.tid)
        assert by_node["sigma"] == {"Co:569", "Co:1495", "Co:773"}
        assert by_node["join"] == {"Co:1072"}

    def test_gov4_renamed_attribute(self, results):
        r = results["Gov4"]
        tids = {e.tid for e in r.ned.detailed}
        assert tids == {"ES:78", "ES:79", "ES:80", "SPO:467"}

    def test_gov6_sum_condition(self, results):
        r = results["Gov6"]
        (entry,) = r.ned.detailed
        assert entry.tid is None

    def test_gov7_union_branches(self, results):
        r = results["Gov7"]
        first, second = r.ned.answers
        assert [e.tid for e in first.detailed] == ["Co:772"]
        assert second.no_compatible_data

    def test_gov2_vs_baseline_divergence(self, results):
        """The paper's Gov2 row: NedExplain blames the join, Why-Not
        the (deeper) byear selection."""
        r = results["Gov2"]
        (entry,) = r.ned.detailed
        assert entry.subquery.op == "join"
        assert r.whynot is not None
        (wn,) = r.whynot.answers
        assert wn.op == "sigma"


class TestCatalog:
    def test_nineteen_use_cases(self):
        assert len(USE_CASES) == 19

    def test_all_databases_within_paper_row_range(self):
        from repro.workloads import get_database

        sizes = {
            name: get_database(name).size()
            for name in ("crime", "imdb", "gov")
        }
        assert sizes["crime"] < sizes["imdb"] < sizes["gov"]
        assert sizes["gov"] > 2000  # "gov the largest"

    def test_use_case_setup_roundtrip(self):
        use_case, db, canonical = use_case_setup("Crime1")
        assert use_case.query == "Q1"
        assert use_case.database == "crime"
        assert canonical.root.target_type == frozenset(
            {"Person.name", "Crime.type"}
        )

    def test_queries_cover_table3_features(self):
        """Table 3's design goals: self-joins, empty intermediates,
        SPJA, and union queries are all present."""
        from repro.workloads import QUERIES, get_canonical
        from repro.relational import Aggregate, Union

        q3 = get_canonical("Q3")
        aliases = [leaf.alias for leaf in q3.root.leaves()]
        assert len(aliases) == len(set(aliases))  # distinct aliases
        assert len(set(q3.aliases.values())) < len(q3.aliases)  # self-join
        assert any(
            isinstance(n, Aggregate)
            for n in get_canonical("Q8").root.postorder()
        )
        assert isinstance(get_canonical("Q12").root, Union)
        assert set(QUERIES) >= {
            "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9",
            "Q10", "Q11", "Q12",
        }
