"""Unit tests for canonicalization (Sec. 3.1, step 2b)."""

import pytest

from repro.errors import QueryError
from repro.core import (
    JoinPair,
    SPJASpec,
    UnionSpec,
    canonicalize,
    is_at_or_above_breakpoint,
)
from repro.relational import (
    Aggregate,
    AggregateCall,
    Join,
    Project,
    RelationLeaf,
    Renaming,
    Select,
    Union,
    attr_cmp,
)
from repro.workloads import get_canonical, get_database


class TestRunningExampleTree:
    """The canonical tree must reproduce Fig. 1(c)."""

    def test_structure(self, running_example):
        _db, canonical = running_example
        root = canonical.root
        assert isinstance(root, Aggregate)
        select = root.child
        assert isinstance(select, Select)
        top_join = select.child
        assert isinstance(top_join, Join)
        low_join = top_join.left
        assert isinstance(low_join, Join)
        assert isinstance(top_join.right, RelationLeaf)
        assert top_join.right.alias == "B"

    def test_breakpoint_is_top_join(self, running_example):
        """V = Q2, the smallest join covering A.name and B.price."""
        _db, canonical = running_example
        assert canonical.breakpoint is not None
        assert isinstance(canonical.breakpoint, Join)
        assert canonical.breakpoint.target_type >= {"A.name", "B.price"}

    def test_selection_sits_right_above_breakpoint(self, running_example):
        """sigma_{A.dob > 800BC} is placed just above V (Ex. 3.1)."""
        _db, canonical = running_example
        select = canonical.node("m2")
        assert isinstance(select, Select)
        assert select.child is canonical.breakpoint

    def test_labels_in_tabq_order(self, running_example):
        _db, canonical = running_example
        assert canonical.node("m0").op == "join"
        assert canonical.node("m1").op == "join"
        assert canonical.node("m2").op == "sigma"
        assert canonical.node("m3").op == "alpha"
        assert canonical.node("A").op == "relation schema"

    def test_frontier_is_just_v(self, running_example):
        _db, canonical = running_example
        assert canonical.frontier == (canonical.breakpoint,)

    def test_pretty_marks_breakpoint(self, running_example):
        _db, canonical = running_example
        assert "* m1" in canonical.pretty()

    def test_label_of(self, running_example):
        _db, canonical = running_example
        node = canonical.node("m1")
        assert canonical.label_of(node) == "m1"
        with pytest.raises(QueryError):
            canonical.label_of(RelationLeaf(
                get_database("crime").table("Person").schema
            ))
        with pytest.raises(QueryError):
            canonical.node("zzz")


class TestSpjCanonicalization:
    def test_selections_pushed_to_leaves(self, spj_example):
        """For SPJ queries the frontier is the leaves: the dob filter
        sits directly above the A leaf."""
        _db, canonical = spj_example
        for node in canonical.root.postorder():
            if isinstance(node, Select):
                assert isinstance(node.child, RelationLeaf)
                assert node.child.alias == "A"
                break
        else:
            pytest.fail("no selection found")

    def test_no_breakpoints_for_spj(self, spj_example):
        _db, canonical = spj_example
        assert canonical.breakpoints == ()
        assert all(
            isinstance(node, RelationLeaf) for node in canonical.frontier
        )

    def test_two_alias_selection_above_join(self):
        canonical = get_canonical("Q4")
        # sigma_{P1.name != P2.name} needs both aliases: above the join
        selects = [
            node
            for node in canonical.root.postorder()
            if isinstance(node, Select)
        ]
        cross = next(
            s for s in selects if len(s.condition.attributes()) == 2
        )
        assert isinstance(cross.child, Join)


class TestAggregateCanonicalization:
    def test_q8_matches_paper_fig4e(self):
        """Q8's tree: S|><|P at the bottom, crime join on top (= V),
        selection above V, aggregation at the root."""
        canonical = get_canonical("Q8")
        assert canonical.node("m0").op == "join"
        assert {leaf.alias for leaf in canonical.node("m0").leaves()} == {
            "Person",
            "Saw",
        }
        assert canonical.node("m2") is canonical.breakpoint
        assert canonical.node("m3").op == "sigma"
        assert canonical.node("m4").op == "alpha"

    def test_selection_not_pushed_below_v(self):
        """Even though sector is available at the Crime leaf, the
        selection must stay above the visibility frontier."""
        canonical = get_canonical("Q8")
        select = canonical.node("m3")
        assert isinstance(select, Select)
        assert select.child is canonical.breakpoint

    def test_is_at_or_above_breakpoint(self):
        canonical = get_canonical("Q8")
        assert is_at_or_above_breakpoint(canonical.node("m2"), canonical)
        assert is_at_or_above_breakpoint(canonical.node("m3"), canonical)
        assert not is_at_or_above_breakpoint(
            canonical.node("m0"), canonical
        )

    def test_single_relation_aggregate(self):
        db = get_database("gov")
        spec = SPJASpec(
            aliases={"SPO": "Sponsors"},
            group_by=("SPO.party",),
            aggregates=(AggregateCall("count", "SPO.id", "n"),),
        )
        canonical = canonicalize(spec, db.schema)
        assert isinstance(canonical.root, Aggregate)
        assert canonical.breakpoint is not None


class TestUnionCanonicalization:
    def test_q12_structure(self):
        canonical = get_canonical("Q12")
        assert isinstance(canonical.root, Union)
        assert canonical.root.target_type == frozenset({"name"})

    def test_union_aliases_merged(self):
        canonical = get_canonical("Q12")
        assert set(canonical.aliases) == {"Co", "AA", "SPO"}


class TestEdgeCases:
    def test_empty_alias_list_rejected(self, tiny_db):
        with pytest.raises(QueryError):
            canonicalize(SPJASpec(aliases={}), tiny_db.schema)

    def test_single_relation_projection(self, tiny_db):
        spec = SPJASpec(aliases={"R": "R"}, projection=("R.x",))
        canonical = canonicalize(spec, tiny_db.schema)
        assert isinstance(canonical.root, Project)

    def test_projection_equal_to_type_elided(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R"}, projection=("R.id", "R.x", "R.y")
        )
        canonical = canonicalize(spec, tiny_db.schema)
        assert isinstance(canonical.root, RelationLeaf)

    def test_cross_product_for_disconnected_aliases(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[],
            projection=("R.x", "S.z"),
        )
        canonical = canonicalize(spec, tiny_db.schema)
        joins = [
            n for n in canonical.root.postorder() if isinstance(n, Join)
        ]
        assert len(joins) == 1
        assert joins[0].renaming.triples == ()

    def test_residual_join_pair_becomes_selection(self, tiny_db):
        # a cyclic join condition over already-connected aliases
        spec = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[
                JoinPair("R.x", "S.x"),
                JoinPair("R.id", "S.id", "rid"),
                JoinPair("R.y", "S.z", "yz"),  # third pair: same aliases
            ],
            projection=("R.y",),
        )
        canonical = canonicalize(spec, tiny_db.schema)
        # two pairs are consumed by the single R-S join; the rest
        # become equality selections above it
        joins = [
            n for n in canonical.root.postorder() if isinstance(n, Join)
        ]
        assert len(joins) == 1
        assert len(joins[0].renaming) >= 2

    def test_unplaceable_selection_rejected(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R"},
            selections=[attr_cmp("S.z", "=", "p")],
            projection=("R.x",),
        )
        with pytest.raises(QueryError):
            canonicalize(spec, tiny_db.schema)

    def test_join_pair_with_unknown_alias_rejected(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R"},
            joins=[JoinPair("R.x", "Z.x")],
            projection=("R.x",),
        )
        with pytest.raises(QueryError):
            canonicalize(spec, tiny_db.schema)

    def test_union_spec_builds(self, tiny_db):
        left = SPJASpec(aliases={"R": "R"}, projection=("R.x",))
        right = SPJASpec(aliases={"S": "S"}, projection=("S.x",))
        spec = UnionSpec(
            left, right, Renaming.of(("R.x", "S.x", "x"))
        )
        canonical = canonicalize(spec, tiny_db.schema)
        assert isinstance(canonical.root, Union)
