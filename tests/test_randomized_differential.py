"""Seed-driven randomized differential tests over generated workloads.

Complements ``test_differential_cache.py`` (which covers the paper's
fixed Table-4 use cases) with randomized coverage: synthetic chain
workloads from :mod:`repro.workloads.generator`, many predicates per
query, batched through :meth:`NedExplain.explain_many` and cross-checked
against independent fresh runs with the shared-evaluation layer turned
off.  All randomness is seeded, so failures replay deterministically.

Volume: ``len(CHAIN_CONFIGS) * PREDICATES_PER_CONFIG`` differential
cases (>= 200, per the acceptance criteria), plus the baseline
cached-vs-uncached sweep.
"""

from __future__ import annotations

import random

import pytest

from repro.baseline import WhyNotBaseline
from repro.core import NedExplain, NedExplainConfig, canonicalize
from repro.relational import EvaluationCache
from repro.workloads import chain_database, chain_predicate, chain_query

# (seed, relations, rows_per_relation, fanout) -- small on purpose:
# each differential case pays for a full fresh evaluation.
CHAIN_CONFIGS = [
    (11, 2, 8, 1),
    (12, 2, 10, 2),
    (13, 2, 14, 3),
    (21, 3, 6, 1),
    (22, 3, 9, 2),
    (23, 3, 12, 2),
    (24, 3, 12, 3),
    (31, 4, 6, 1),
    (32, 4, 8, 2),
    (33, 4, 10, 2),
    (41, 5, 6, 2),
    (42, 5, 8, 3),
]
PREDICATES_PER_CONFIG = 18

assert len(CHAIN_CONFIGS) * PREDICATES_PER_CONFIG >= 200


def build_chain(seed, relations, rows, fanout):
    database = chain_database(
        relations, rows_per_relation=rows, fanout=fanout, seed=seed
    )
    canonical = canonicalize(chain_query(relations), database.schema)
    return database, canonical


def random_predicates(seed, relations, count):
    """Seeded why-not questions over the chain query's target schema.

    The chain query projects ``R0.label`` and ``R{last}.label``; the
    predicates mix hits, misses, the designated needle, and two-attribute
    constraints over both ends of the chain.
    """
    rng = random.Random(seed * 7919)
    last = relations - 1
    predicates = [chain_predicate()]  # always include the needle
    while len(predicates) < count:
        shape = rng.randrange(4)
        if shape == 0:
            predicates.append(f"(R0.label: r0v{rng.randrange(10)})")
        elif shape == 1:
            predicates.append(
                f"(R{last}.label: r{last}v{rng.randrange(10)})"
            )
        elif shape == 2:
            predicates.append(
                f"(R0.label: r0v{rng.randrange(10)}, "
                f"R{last}.label: r{last}v{rng.randrange(10)})"
            )
        else:  # a value that exists nowhere
            predicates.append(
                f"(R0.label: ghost{rng.randrange(1000)})"
            )
    return predicates


def answer_key(report):
    """Observable content of a NedExplain report, as plain data."""
    return tuple(
        (
            repr(a.ctuple),
            a.detailed_pairs,
            a.condensed_labels,
            a.secondary_labels,
            a.no_compatible_data,
            a.answer_not_missing,
        )
        for a in report.answers
    )


def tabq_key(engine):
    return tuple(
        tuple(
            (
                entry.label,
                tuple(entry.input),
                None if entry.output is None else tuple(entry.output),
                tuple(entry.compatibles),
                tuple(entry.blocked),
            )
            for entry in tabq
        )
        for tabq in engine.last_tabqs
    )


@pytest.mark.parametrize(
    "seed,relations,rows,fanout",
    CHAIN_CONFIGS,
    ids=[f"chain-s{c[0]}-r{c[1]}" for c in CHAIN_CONFIGS],
)
def test_explain_many_matches_fresh_runs(seed, relations, rows, fanout):
    database, canonical = build_chain(seed, relations, rows, fanout)
    predicates = random_predicates(
        seed, relations, PREDICATES_PER_CONFIG
    )

    cache = EvaluationCache()
    engine = NedExplain(canonical, database=database, cache=cache)
    batched = []
    for predicate in predicates:
        report = engine.explain(predicate)
        batched.append((report, tabq_key(engine)))

    # the entire batch rides on a single full evaluation
    assert cache.stats.evaluations == 1
    assert cache.stats.hits == len(predicates) - 1

    oracle_config = NedExplainConfig(use_shared_evaluation=False)
    for predicate, (report, tabqs) in zip(predicates, batched):
        oracle = NedExplain(
            canonical, database=database, config=oracle_config
        )
        oracle_report = oracle.explain(predicate)
        assert answer_key(report) == answer_key(oracle_report), (
            f"divergence at seed={seed} predicate={predicate}"
        )
        assert report.summary() == oracle_report.summary()
        assert tabqs == tabq_key(oracle), (
            f"TabQ divergence at seed={seed} predicate={predicate}"
        )


@pytest.mark.parametrize(
    "seed,relations,rows,fanout",
    CHAIN_CONFIGS[:6],
    ids=[f"chain-s{c[0]}-r{c[1]}" for c in CHAIN_CONFIGS[:6]],
)
def test_baseline_tracing_invariant_under_cache(
    seed, relations, rows, fanout
):
    """Chain queries are SPJ, so the baseline supports them: its traces
    and frontier must not change when the evaluation is served from the
    shared cache."""
    database, canonical = build_chain(seed, relations, rows, fanout)
    predicates = random_predicates(seed, relations, 6)

    cache = EvaluationCache()
    cached = WhyNotBaseline(canonical, database=database, cache=cache)
    uncached = WhyNotBaseline(
        canonical, database=database, use_cache=False
    )

    for predicate in predicates:
        got = cached.explain(predicate)
        expected = uncached.explain(predicate)
        assert got.answer_labels == expected.answer_labels
        assert got.satisfied_constraints == expected.satisfied_constraints
        assert [
            (t.item.tuple.tid, t.survived) for t in got.traces
        ] == [
            (t.item.tuple.tid, t.survived) for t in expected.traces
        ]
    # every cached explain after the first is a pure hit
    assert cache.stats.evaluations == 1
    assert cache.stats.hits == len(predicates) - 1


def test_batched_engine_and_baseline_share_chain_evaluation():
    database, canonical = build_chain(21, 3, 6, 1)
    cache = EvaluationCache()
    engine = NedExplain(canonical, database=database, cache=cache)
    engine.explain_many(random_predicates(21, 3, 5))
    WhyNotBaseline(
        canonical, database=database, cache=cache
    ).explain(chain_predicate())
    assert cache.stats.evaluations == 1
