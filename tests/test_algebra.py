"""Unit tests for the query algebra (Def. 2.2) and its evaluation."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.relational import (
    Aggregate,
    AggregateCall,
    Join,
    Project,
    RelationLeaf,
    RelationSchema,
    Renaming,
    Select,
    Tuple,
    Union,
    assign_labels,
    attr_cmp,
    base_tuple,
    find_node,
    subtree_covering,
    tabq_order,
    validate_tree,
    var_cmp,
)


def leaf(name: str, *attrs: str) -> RelationLeaf:
    return RelationLeaf(RelationSchema(name, attrs))


def rows(alias: str, *dicts):
    return [
        base_tuple(alias, f"{alias}:{i}", **d) for i, d in enumerate(dicts)
    ]


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------
class TestRelationLeaf:
    def test_target_type(self):
        node = leaf("A", "x", "y")
        assert node.target_type == frozenset({"A.x", "A.y"})
        assert node.op == "relation schema"

    def test_apply_passes_through(self):
        node = leaf("A", "x")
        data = rows("A", {"x": 1}, {"x": 2})
        assert node.apply([data]) == data

    def test_apply_dedupes(self):
        node = leaf("A", "x")
        t = base_tuple("A", "A:1", x=1)
        assert node.apply([[t, t]]) == [t]

    def test_apply_wrong_arity(self):
        node = leaf("A", "x")
        with pytest.raises(QueryError):
            node.apply([[], []])


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------
class TestSelect:
    def test_filters_and_derives(self):
        node = Select(leaf("A", "x"), attr_cmp("A.x", ">", 1))
        data = rows("A", {"x": 1}, {"x": 2})
        out = node.apply([data])
        assert len(out) == 1
        assert out[0]["A.x"] == 2
        assert out[0].parents == (data[1],)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(QueryError):
            Select(leaf("A", "x"), attr_cmp("A.z", "=", 1))

    def test_variable_condition_rejected(self):
        with pytest.raises(QueryError):
            Select(leaf("A", "x"), var_cmp("v", "=", 1))

    def test_target_type_unchanged(self):
        node = Select(leaf("A", "x"), attr_cmp("A.x", "=", 1))
        assert node.target_type == frozenset({"A.x"})


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------
class TestProject:
    def test_projects(self):
        node = Project(leaf("A", "x", "y"), ["A.x"])
        out = node.apply([rows("A", {"x": 1, "y": 2})])
        assert out[0].type == frozenset({"A.x"})

    def test_keeps_per_lineage_derivations(self):
        node = Project(leaf("A", "x", "y"), ["A.x"])
        data = rows("A", {"x": 1, "y": 2}, {"x": 1, "y": 3})
        out = node.apply([data])
        # same projected values, distinct lineage: both survive
        assert len(out) == 2

    def test_dedupes_identical_derivations(self):
        node = Project(leaf("A", "x", "y"), ["A.x"])
        t = base_tuple("A", "A:1", x=1, y=2)
        assert len(node.apply([[t, t]])) == 1

    def test_validation(self):
        with pytest.raises(QueryError):
            Project(leaf("A", "x"), [])
        with pytest.raises(QueryError):
            Project(leaf("A", "x"), ["A.x", "A.x"])
        with pytest.raises(QueryError):
            Project(leaf("A", "x"), ["A.z"])


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------
class TestJoin:
    def _join(self):
        return Join(
            leaf("A", "k", "x"),
            leaf("B", "k", "y"),
            Renaming.of(("A.k", "B.k", "k")),
        )

    def test_equi_join(self):
        node = self._join()
        left = rows("A", {"k": 1, "x": "l1"}, {"k": 2, "x": "l2"})
        right = rows("B", {"k": 1, "y": "r1"}, {"k": 3, "y": "r3"})
        out = node.apply([left, right])
        assert len(out) == 1
        (t,) = out
        assert t["k"] == 1 and t["A.x"] == "l1" and t["B.y"] == "r1"
        assert set(t.parents) == {left[0], right[0]}

    def test_target_type_renames_join_attrs(self):
        node = self._join()
        assert node.target_type == frozenset({"k", "A.x", "B.y"})

    def test_null_never_joins(self):
        node = self._join()
        left = rows("A", {"k": None, "x": "l"})
        right = rows("B", {"k": None, "y": "r"})
        assert node.apply([left, right]) == []

    def test_cross_product_with_empty_renaming(self):
        node = Join(leaf("A", "x"), leaf("B", "y"), Renaming())
        out = node.apply(
            [rows("A", {"x": 1}, {"x": 2}), rows("B", {"y": 3})]
        )
        assert len(out) == 2

    def test_multi_attribute_join(self):
        node = Join(
            leaf("A", "h", "c"),
            leaf("B", "h", "c"),
            Renaming.of(("A.h", "B.h", "h"), ("A.c", "B.c", "c")),
        )
        left = rows("A", {"h": 1, "c": 1}, {"h": 1, "c": 2})
        right = rows("B", {"h": 1, "c": 1})
        out = node.apply([left, right])
        assert len(out) == 1

    def test_shared_alias_rejected(self):
        a1, a2 = leaf("A", "x"), leaf("A", "y")
        with pytest.raises(SchemaError):
            Join(a1, a2, Renaming())

    def test_lineage_union(self):
        node = self._join()
        left = rows("A", {"k": 1, "x": "l"})
        right = rows("B", {"k": 1, "y": "r"})
        (t,) = node.apply([left, right])
        assert t.lineage == frozenset({"A:0", "B:0"})


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
class TestAggregate:
    def _agg(self):
        return Aggregate(
            leaf("A", "g", "v"),
            ["A.g"],
            [AggregateCall("sum", "A.v", "s")],
        )

    def test_grouping(self):
        node = self._agg()
        data = rows(
            "A", {"g": "x", "v": 1}, {"g": "x", "v": 2}, {"g": "y", "v": 5}
        )
        out = node.apply([data])
        by_group = {t["A.g"]: t["s"] for t in out}
        assert by_group == {"x": 3, "y": 5}

    def test_group_lineage_and_parents(self):
        node = self._agg()
        data = rows("A", {"g": "x", "v": 1}, {"g": "x", "v": 2})
        (t,) = node.apply([data])
        assert t.lineage == frozenset({"A:0", "A:1"})
        assert set(t.parents) == set(data)

    def test_empty_input_with_grouping(self):
        assert self._agg().apply([[]]) == []

    def test_empty_input_without_grouping(self):
        node = Aggregate(
            leaf("A", "v"), [], [AggregateCall("count", "A.v", "c")]
        )
        out = node.apply([[]])
        assert len(out) == 1 and out[0]["c"] == 0

    def test_target_type(self):
        assert self._agg().target_type == frozenset({"A.g", "s"})

    def test_needed_attributes(self):
        assert self._agg().needed_attributes == frozenset({"A.g", "A.v"})

    def test_validation(self):
        with pytest.raises(QueryError):
            Aggregate(leaf("A", "v"), ["A.z"], [])
        with pytest.raises(QueryError):
            Aggregate(leaf("A", "v"), [], [])
        with pytest.raises(QueryError):
            Aggregate(
                leaf("A", "v"), [], [AggregateCall("sum", "A.z", "s")]
            )
        with pytest.raises(QueryError):
            # output alias clashes with an input attribute
            Aggregate(
                leaf("A", "v", "s"),
                ["A.s"],
                [AggregateCall("sum", "A.v", "A.s")],
            )

    def test_duplicate_group_attrs_rejected(self):
        with pytest.raises(QueryError):
            Aggregate(
                leaf("A", "g", "v"),
                ["A.g", "A.g"],
                [AggregateCall("sum", "A.v", "s")],
            )


# ---------------------------------------------------------------------------
# Union
# ---------------------------------------------------------------------------
class TestUnion:
    def _union(self):
        return Union(
            leaf("A", "x"),
            leaf("B", "y"),
            Renaming.of(("A.x", "B.y", "v")),
        )

    def test_renames_both_sides(self):
        node = self._union()
        out = node.apply(
            [rows("A", {"x": 1}), rows("B", {"y": 2})]
        )
        assert [t["v"] for t in out] == [1, 2]

    def test_same_value_different_lineage_kept(self):
        node = self._union()
        out = node.apply([rows("A", {"x": 1}), rows("B", {"y": 1})])
        assert len(out) == 2  # derivation semantics

    def test_incompatible_types_rejected(self):
        with pytest.raises(QueryError):
            Union(leaf("A", "x", "w"), leaf("B", "y"), Renaming.of(
                ("A.x", "B.y", "v")
            ))

    def test_target_type(self):
        assert self._union().target_type == frozenset({"v"})


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------
class TestTreeUtilities:
    def _tree(self):
        a, b = leaf("A", "k"), leaf("B", "k")
        join = Join(a, b, Renaming.of(("A.k", "B.k", "k")))
        top = Project(join, ["k"])
        return top, join, a, b

    def test_tabq_order_decreasing_depth(self):
        top, join, a, b = self._tree()
        assert tabq_order(top) == [a, b, join, top]

    def test_assign_labels(self):
        top, join, a, b = self._tree()
        labels = assign_labels(top)
        assert labels["A"] is a
        assert labels["m0"] is join
        assert labels["m1"] is top

    def test_find_node(self):
        top, join, *_ = self._tree()
        assign_labels(top)
        assert find_node(top, "m0") is join
        with pytest.raises(QueryError):
            find_node(top, "m9")

    def test_parent_and_depth(self):
        top, join, a, b = self._tree()
        assert top.parent_of(join) is top
        assert top.parent_of(a) is join
        assert top.parent_of(top) is None
        assert top.depth_of(a) == 2
        assert top.depth_of(top) == 0

    def test_depth_of_foreign_node_raises(self):
        top, *_ = self._tree()
        with pytest.raises(QueryError):
            top.depth_of(leaf("Z", "x"))

    def test_subquery_relations(self):
        top, join, a, b = self._tree()
        assert join.is_subquery_of(top)
        assert not top.is_subquery_of(join)
        assert top.contains(a)

    def test_validate_tree_duplicate_alias(self):
        a1 = leaf("A", "k")
        # malformed: same alias on both sides, bypassing Join's check
        a2 = leaf("A", "k")
        with pytest.raises(SchemaError):
            Join(a1, a2, Renaming())
        # a hand-built broken tree is caught by validate_tree
        join = Join(a1, leaf("B", "k"), Renaming())
        join.right = a2  # type: ignore[assignment]
        with pytest.raises(SchemaError):
            validate_tree(join)

    def test_subtree_covering(self):
        top, join, a, b = self._tree()
        # A.k is renamed away at the join: only the leaf itself covers it
        assert subtree_covering(a, frozenset({"A.k"})) is a
        assert subtree_covering(top, frozenset({"k"})) is join
        assert subtree_covering(top, frozenset({"nope"})) is None

    def test_leaves_left_to_right(self):
        top, join, a, b = self._tree()
        assert top.leaves() == (a, b)

    def test_pretty_renders_all_nodes(self):
        top, *_ = self._tree()
        assign_labels(top)
        text = top.pretty()
        assert "m1" in text and "m0" in text and "[A]" in text
