"""Tests for CSV persistence, the SQL formatter, and the CLI."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.cli import main
from repro.core import JoinPair, SPJASpec, UnionSpec
from repro.relational import AggregateCall, Database, Renaming, attr_cmp
from repro.relational.csv_io import load_database, save_database
from repro.relational.sql import parse_sql, sql_to_spec
from repro.relational.sql.formatter import format_spec
from repro.relational.sql.translate import translate


# ---------------------------------------------------------------------------
# CSV persistence
# ---------------------------------------------------------------------------
class TestCsvIo:
    def test_round_trip(self, running_example_db, tmp_path):
        save_database(running_example_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.table_names() == running_example_db.table_names()
        assert loaded.size() == running_example_db.size()
        homer = loaded.table("A").by_tid("A:a1")
        assert homer["A.name"] == "Homer"
        assert homer["A.dob"] == -800  # int survives the round trip

    def test_key_declarations_survive(self, running_example_db, tmp_path):
        save_database(running_example_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.table("A").schema.key == "aid"
        assert loaded.table("AB").schema.key is None

    def test_null_round_trip(self, tmp_path):
        db = Database()
        db.create_table("T", ["id", "v"], key="id")
        db.insert("T", id=1, v=None)
        db.insert("T", id=2, v="x")
        save_database(db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.table("T").by_tid("T:1")["T.v"] is None

    def test_float_round_trip(self, tmp_path):
        db = Database()
        db.create_table("T", ["id", "v"], key="id")
        db.insert("T", id=1, v=3.5)
        save_database(db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.table("T").by_tid("T:1")["T.v"] == 3.5

    def test_schemaless_directory(self, tmp_path):
        (tmp_path / "People.csv").write_text(
            "id,name\n1,ada\n2,grace\n"
        )
        loaded = load_database(tmp_path)
        assert loaded.table("People").rows[0]["People.name"] == "ada"
        # without a catalog there is no key: ids are auto-assigned
        assert loaded.table("People").schema.key is None

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database(tmp_path / "nope")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database(tmp_path)

    def test_header_only_csv_loads_empty(self, tmp_path):
        (tmp_path / "T.csv").write_text("id,v\n")
        loaded = load_database(tmp_path)
        assert len(loaded.table("T")) == 0

    def test_headerless_csv_rejected(self, tmp_path):
        (tmp_path / "T.csv").write_text("")
        with pytest.raises(SchemaError):
            load_database(tmp_path)

    def test_explainable_after_loading(self, running_example_db, tmp_path):
        from repro.core import NedExplain, canonicalize

        save_database(running_example_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        spec = SPJASpec(
            aliases={"A": "A", "AB": "AB", "B": "B"},
            joins=[JoinPair("A.aid", "AB.aid"),
                   JoinPair("AB.bid", "B.bid")],
            selections=[attr_cmp("A.dob", ">", -800)],
            group_by=("A.name",),
            aggregates=(AggregateCall("avg", "B.price", "ap"),),
        )
        canonical = canonicalize(spec, loaded.schema)
        report = NedExplain(canonical, database=loaded).explain(
            "((A.name: Homer, ap: $x), $x > 25)"
        )
        assert report.condensed_labels == ("m2",)


# ---------------------------------------------------------------------------
# SQL formatter (round trips)
# ---------------------------------------------------------------------------
class TestFormatter:
    def _round_trip(self, spec, schema):
        text = format_spec(spec)
        return translate(parse_sql(text), schema)

    def test_spj_round_trip(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.x", "S.x")],
            selections=[attr_cmp("R.y", ">", 5)],
            projection=("R.y", "S.z"),
        )
        back = self._round_trip(spec, tiny_db.schema)
        assert back.aliases == spec.aliases
        assert back.joins[0].left == "R.x"
        assert back.selections == spec.selections
        assert back.projection == spec.projection

    def test_aggregate_round_trip(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R"},
            group_by=("R.x",),
            aggregates=(AggregateCall("sum", "R.y", "total"),),
        )
        back = self._round_trip(spec, tiny_db.schema)
        assert back.group_by == spec.group_by
        assert back.aggregates == spec.aggregates

    def test_union_round_trip(self, tiny_db):
        spec = UnionSpec(
            SPJASpec(aliases={"R": "R"}, projection=("R.x",)),
            SPJASpec(aliases={"S": "S"}, projection=("S.x",)),
            Renaming.of(("R.x", "S.x", "x")),
        )
        back = self._round_trip(spec, tiny_db.schema)
        assert isinstance(back, UnionSpec)
        assert back.renaming.codomain == frozenset({"x"})

    def test_string_literals_escaped(self, tiny_db):
        spec = SPJASpec(
            aliases={"R": "R"},
            selections=[attr_cmp("R.x", "=", "o'hara")],
            projection=("R.y",),
        )
        back = self._round_trip(spec, tiny_db.schema)
        assert back.selections == spec.selections

    def test_select_star(self, tiny_db):
        spec = SPJASpec(aliases={"R": "R"}, projection=None)
        assert "SELECT *" in format_spec(spec)

    def test_alias_rendering(self, tiny_db):
        spec = SPJASpec(aliases={"a": "R"}, projection=("a.x",))
        assert "R a" in format_spec(spec)

    def test_unsupported_condition_rejected(self, tiny_db):
        from repro.relational import Or

        spec = SPJASpec(
            aliases={"R": "R"},
            selections=[
                Or.of(attr_cmp("R.x", "=", 1), attr_cmp("R.y", "=", 2))
            ],
            projection=("R.x",),
        )
        with pytest.raises(QueryError):
            format_spec(spec)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "Crime5"]) == 0
        out = capsys.readouterr().out
        assert "NedExplain" in out and "m3" in out and "m2" in out

    def test_demo_unknown_case(self, capsys):
        assert main(["demo", "Nope"]) == 2
        assert "unknown use case" in capsys.readouterr().err

    def test_explain_over_csv(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            [
                "explain",
                "--data", str(tmp_path / "db"),
                "--sql",
                "SELECT A.name, AVG(B.price) AS ap FROM A, AB, B "
                "WHERE A.dob > -800 AND A.aid = AB.aid "
                "AND B.bid = AB.bid GROUP BY A.name",
                "--why-not", "((A.name: Homer, ap: $x), $x > 25)",
                "--baseline", "--repairs", "--show-result",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detailed : (A:a1, m2)" in out
        assert "repair:" in out and "[verified]" in out
        assert "Sophocles" in out  # --show-result

    def test_explain_reports_errors(self, tmp_path, capsys):
        code = main(
            [
                "explain",
                "--data", str(tmp_path),
                "--sql", "SELECT x FROM T",
                "--why-not", "(x: 1)",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate(self, capsys):
        assert main(["evaluate"]) == 0
        out = capsys.readouterr().out
        assert "Crime1" in out and "Gov7" in out


class TestCliObservability:
    """--json / --trace / --metrics: one writer, no interleaving."""

    def _explain_args(self, tmp_path):
        return [
            "explain",
            "--data", str(tmp_path / "db"),
            "--sql",
            "SELECT A.name FROM A WHERE A.dob > -800",
            "--why-not", "(A.name: Homer)",
        ]

    def test_json_output_is_one_document(
        self, running_example_db, tmp_path, capsys
    ):
        import json

        save_database(running_example_db, tmp_path / "db")
        code = main(self._explain_args(tmp_path) + ["--json"])
        out = capsys.readouterr().out
        document = json.loads(out)  # the whole stdout parses at once
        assert code == 0
        assert document["command"] == "explain"
        assert document["exit_code"] == 0
        assert document["questions"] == ["(A.name: Homer)"]
        report = document["reports"][0]
        assert set(report["phase_times_ms"]) >= {
            "Initialization", "CompatibleFinder",
        }
        entries = report["answers"][0]["detailed"]
        assert {"tid": "A:a1", "subquery": "m0"} in entries

    def test_json_errors_go_to_stderr_and_document(
        self, tmp_path, capsys
    ):
        import json

        code = main(
            [
                "explain",
                "--data", str(tmp_path),
                "--sql", "SELECT x FROM T",
                "--why-not", "(x: 1)",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        document = json.loads(captured.out)
        assert document["exit_code"] == 2
        assert any("error:" in e for e in document["errors"])

    def test_trace_flag_writes_valid_artifact(
        self, running_example_db, tmp_path, capsys
    ):
        from repro.obs import read_trace_jsonl

        save_database(running_example_db, tmp_path / "db")
        trace_path = tmp_path / "run_trace.jsonl"
        code = main(
            self._explain_args(tmp_path) + ["--trace", str(trace_path)]
        )
        assert code == 0
        assert f"trace written to {trace_path}" in (
            capsys.readouterr().out
        )
        spans, metrics = read_trace_jsonl(trace_path)
        categories = {record["category"] for record in spans}
        assert {"run", "phase", "operator"} <= categories
        assert metrics["evaluator.operators"]["value"] > 0

    def test_metrics_flag_renders_snapshot(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(self._explain_args(tmp_path) + ["--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "cache.misses:" in out
        assert "trace tree:" in out

    def test_json_trace_metrics_compose(
        self, running_example_db, tmp_path, capsys
    ):
        import json

        save_database(running_example_db, tmp_path / "db")
        trace_path = tmp_path / "t.jsonl"
        code = main(
            self._explain_args(tmp_path)
            + ["--json", "--metrics", "--trace", str(trace_path)]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace_file"] == str(trace_path)
        assert document["metrics"]["evaluator.operators"]["value"] > 0
        assert set(document["trace_summary"]) >= {"Initialization"}

    def test_demo_supports_json(self, capsys):
        import json

        assert main(["demo", "Crime5", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["use_case"] == "Crime5"
        assert document["report"]["answers"]
        assert document["baseline"]

    def test_batch_json_reports_outcomes(
        self, running_example_db, tmp_path, capsys
    ):
        import json

        save_database(running_example_db, tmp_path / "db")
        code = main(
            [
                "explain",
                "--data", str(tmp_path / "db"),
                "--sql",
                "SELECT A.name FROM A WHERE A.dob > -800",
                "--why-not", "(A.name: Homer)",
                "--why-not", "(A.name: Vergil)",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["outcomes"]) == 2
        assert all(o["ok"] for o in document["outcomes"])
        assert document["batch"]["questions"] == 2
        assert document["batch"]["evaluations"] == 1


class TestCliResilience:
    """--retries / --fallback-baseline / --journal and exit code 4."""

    def _base_args(self, tmp_path):
        return [
            "explain",
            "--data", str(tmp_path / "db"),
            "--sql",
            "SELECT A.name FROM A WHERE A.dob > -800",
            "--json",
        ]

    def test_outcome_schema_is_stable(
        self, running_example_db, tmp_path, capsys
    ):
        """The journalled/--json outcome document shape is a contract:
        resume compatibility and downstream consumers both depend on
        these exact keys staying put."""
        import json

        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + [
                "--why-not", "(A.name: Homer)",
                "--why-not", "(A.nope: broken)",
            ]
        )
        assert code == 3  # one failed question degrades the batch
        document = json.loads(capsys.readouterr().out)
        ok, failed = document["outcomes"]
        expected_keys = {
            "question", "ok", "report", "failure",
            "attempts", "degradation_level", "baseline",
        }
        assert set(ok) == expected_keys
        assert set(failed) == expected_keys
        assert ok["attempts"] == 1
        assert ok["degradation_level"] == "full"
        assert failed["degradation_level"] == "failed"
        assert set(failed["failure"]) == {
            "error_class", "message", "phase", "spent", "attempts",
        }
        # report keys (the pre-resilience ones must all survive)
        assert set(ok["report"]) == {
            "answers", "phase_times_ms", "total_time_ms",
            "partial", "degraded_reason", "degradation_level",
        }

    def test_retries_exhausted_without_fallback_exits_4(
        self, running_example_db, tmp_path, capsys
    ):
        import json

        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + ["--why-not", "(A.nope: broken)", "--retries", "2"]
        )
        assert code == 4
        document = json.loads(capsys.readouterr().out)
        assert document["exit_code"] == 4
        assert document["outcomes"][0]["degradation_level"] == "failed"

    def test_single_question_with_retries_uses_batch_path(
        self, running_example_db, tmp_path, capsys
    ):
        import json

        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + ["--why-not", "(A.name: Homer)", "--retries", "3"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        (outcome,) = document["outcomes"]
        assert outcome["ok"] and outcome["attempts"] == 1

    def test_journal_round_trip_over_cli(
        self, running_example_db, tmp_path, capsys
    ):
        import json

        save_database(running_example_db, tmp_path / "db")
        journal = tmp_path / "batch.jsonl"
        args = self._base_args(tmp_path) + [
            "--why-not", "(A.name: Homer)",
            "--journal", str(journal),
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["journal"] == str(journal)
        assert len(journal.read_text().splitlines()) == 1

        assert main(args + ["--resume"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["outcomes"] == first["outcomes"]

    def test_resume_requires_journal(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            [
                "explain",
                "--data", str(tmp_path / "db"),
                "--sql", "SELECT A.name FROM A WHERE A.dob > -800",
                "--why-not", "(A.name: Homer)",
                "--resume",
            ]
        )
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err


class TestCliErrorEnvelope:
    """Every nonzero ``--json`` exit carries one stable error envelope:
    ``document["error"] == {"type", "message", "exit_code"}``.  Scripted
    callers branch on this shape for *every* failure mode -- fatal (2),
    degraded (3), resilience-exhausted (4), drained (5), shed (6) --
    instead of scraping stderr."""

    def _document(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def _assert_envelope(self, document, exit_code, error_type):
        assert document["exit_code"] == exit_code
        envelope = document["error"]
        assert set(envelope) == {"type", "message", "exit_code"}
        assert envelope["exit_code"] == exit_code
        assert envelope["type"] == error_type
        assert (
            isinstance(envelope["message"], str)
            and envelope["message"]
        )

    def _base_args(self, tmp_path):
        return [
            "explain",
            "--data", str(tmp_path / "db"),
            "--sql",
            "SELECT A.name FROM A WHERE A.dob > -800",
            "--json",
        ]

    def test_exit_0_has_no_envelope(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + ["--why-not", "(A.name: Homer)"]
        )
        assert code == 0
        assert "error" not in self._document(capsys)

    def test_exit_2_fatal_names_the_raised_error(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + ["--why-not", "(A.name: Homer)", "--resume"]
        )
        assert code == 2
        document = self._document(capsys)
        self._assert_envelope(document, 2, "ConfigurationError")
        assert "--resume requires --journal" in (
            document["error"]["message"]
        )

    def test_exit_2_fatal_demo_unknown_use_case(self, capsys):
        code = main(["demo", "Nope", "--json"])
        assert code == 2
        document = self._document(capsys)
        self._assert_envelope(document, 2, "ConfigurationError")
        assert "unknown use case" in document["error"]["message"]

    def test_exit_3_degraded(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + [
                "--why-not", "(A.name: Homer)",
                "--why-not", "(A.nope: broken)",
            ]
        )
        assert code == 3
        self._assert_envelope(
            self._document(capsys), 3, "DegradedResult"
        )

    def test_exit_4_resilience_exhausted(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + ["--why-not", "(A.nope: broken)", "--retries", "2"]
        )
        assert code == 4
        self._assert_envelope(
            self._document(capsys), 4, "ResilienceExhausted"
        )

    def test_exit_5_drained(
        self, running_example_db, tmp_path, capsys, monkeypatch
    ):
        """A drain signal mid-batch (the deterministic SIGINT hook
        fires after the first journaled record) exits 5 with the
        BatchDrained envelope."""
        from repro.robustness.journal import SIGINT_AFTER_ENV

        save_database(running_example_db, tmp_path / "db")
        monkeypatch.setenv(SIGINT_AFTER_ENV, "1")
        code = main(
            self._base_args(tmp_path)
            + [
                "--why-not", "(A.name: Homer)",
                "--why-not", "(A.name: Vergil)",
                "--why-not", "(A.name: Sophocles)",
                "--journal", str(tmp_path / "batch.jsonl"),
            ]
        )
        assert code == 5
        document = self._document(capsys)
        self._assert_envelope(document, 5, "BatchDrained")
        assert document["drained_by"] == "SIGINT"

    def test_exit_6_shed(
        self, running_example_db, tmp_path, capsys
    ):
        save_database(running_example_db, tmp_path / "db")
        code = main(
            self._base_args(tmp_path)
            + [
                "--why-not", "(A.name: Homer)",
                "--why-not", "(A.name: Vergil)",
                "--shed-after", "1",
            ]
        )
        assert code == 6
        self._assert_envelope(self._document(capsys), 6, "LoadShed")
