"""Row-vs-columnar engine differential over every Table 4 use case.

The row engine is the oracle.  For each use case the suite asserts:

1. **evaluation parity** -- node by node, the columnar row view carries
   the same tuples in the same order with the same lineage sets;
2. **work parity** -- identical budget tick totals (rows, comparisons)
   and identical ``evaluator.*`` counters, apart from the columnar-only
   ``evaluator.batches``;
3. **algorithm parity** -- ``use_columnar=True`` NedExplain produces
   the same answers (detailed, condensed, secondary), the same
   summaries, and the same TabQ traversal picks;
4. **cache parity** -- columnar cache entries pass the cache
   invariants and serve hits exactly like row entries.
"""

from __future__ import annotations

import pytest

from repro.columnar import evaluate_columnar
from repro.core import NedExplain, NedExplainConfig
from repro.obs import Tracer, counter_values, tracing
from repro.relational import EvaluationCache, evaluate
from repro.robustness.budget import (
    Budget,
    ExecutionContext,
    execution_context,
)
from repro.workloads import USE_CASES, use_case_setup

USE_CASE_NAMES = [uc.name for uc in USE_CASES]

COLUMNAR = NedExplainConfig(use_columnar=True)


def _traced(fn):
    tracer = Tracer()
    with tracing(tracer):
        with execution_context(ExecutionContext(Budget())):
            out = fn()
    return out, counter_values(tracer.metrics.snapshot())


def _node_key(tuples):
    return [(dict(t.values), t.lineage) for t in tuples]


def _answer_key(report):
    return tuple(
        (
            repr(a.ctuple),
            a.detailed_pairs,
            a.condensed_labels,
            a.secondary_labels,
            a.no_compatible_data,
            a.answer_not_missing,
        )
        for a in report.answers
    )


def _tabq_key(engine):
    return tuple(
        tuple(
            (
                entry.label,
                tuple(entry.input),
                None if entry.output is None else tuple(entry.output),
                tuple(entry.compatibles),
                tuple(entry.blocked),
            )
            for entry in tabq
        )
        for tabq in engine.last_tabqs
    )


@pytest.mark.parametrize("name", USE_CASE_NAMES)
def test_evaluation_parity(name):
    use_case, database, canonical = use_case_setup(name, 1)
    instance = database.input_instance(canonical.aliases)

    row, row_counters = _traced(
        lambda: evaluate(canonical.root, instance)
    )
    col_result, col_counters = _traced(
        lambda: evaluate_columnar(canonical.root, instance)
    )
    col = col_result.row_view()

    for node in canonical.root.postorder():
        assert _node_key(row.output(node)) == _node_key(
            col.output(node)
        ), f"{name}: divergence at {node.describe()}"

    assert col_counters.pop("evaluator.batches") >= len(
        list(canonical.root.postorder())
    )
    assert col_counters == row_counters, (
        f"{name}: work accounting diverged"
    )


@pytest.mark.parametrize("name", USE_CASE_NAMES)
def test_nedexplain_parity(name):
    use_case, database, canonical = use_case_setup(name, 1)

    oracle = NedExplain(canonical, database=database)
    oracle_report = oracle.explain(use_case.predicate)

    engine = NedExplain(canonical, database=database, config=COLUMNAR)
    report = engine.explain(use_case.predicate)

    assert _answer_key(report) == _answer_key(oracle_report), (
        f"{name}: answers diverged"
    )
    assert report.summary() == oracle_report.summary()
    assert _tabq_key(engine) == _tabq_key(oracle), (
        f"{name}: TabQ traversal diverged"
    )


def test_columnar_cache_entries_hit_and_hold_invariants():
    """A batch of questions on one columnar cache: one evaluation,
    N-1 hits, invariants intact -- same contract as row entries."""
    use_case, database, canonical = use_case_setup("Gov5", 1)
    cache = EvaluationCache()
    engine = NedExplain(
        canonical, database=database, cache=cache, config=COLUMNAR
    )
    questions = [use_case.predicate] * 3
    reports = [engine.explain(q) for q in questions]
    assert cache.stats.evaluations == 1
    assert cache.stats.hits == len(questions) - 1
    cache.check_invariants()
    assert len({_answer_key(r) for r in reports}) == 1


def test_columnar_requires_shared_evaluation():
    from repro.errors import ConfigurationError

    use_case, database, canonical = use_case_setup("Crime1", 1)
    with pytest.raises(ConfigurationError):
        NedExplain(
            canonical,
            database=database,
            config=NedExplainConfig(
                use_columnar=True, use_shared_evaluation=False
            ),
        )
