"""Tests for the workload generator, canonical_from_tree, and the
public API surface."""

import pytest

from repro.core import CTuple, canonical_from_tree, nedexplain
from repro.errors import ConfigurationError
from repro.core.canonical import canonicalize
from repro.relational import (
    Aggregate,
    AggregateCall,
    Join,
    RelationLeaf,
    Renaming,
    evaluate_query,
)
from repro.workloads import (
    chain_database,
    chain_predicate,
    chain_query,
    scaled_database,
)


class TestChainWorkload:
    def test_database_shape(self):
        db = chain_database(3, rows_per_relation=20)
        assert set(db.table_names()) == {"R0", "R1", "R2"}
        assert len(db.table("R0")) == 21  # 20 rows + the needle

    def test_needle_exists_and_breaks(self):
        db = chain_database(2, rows_per_relation=10)
        needle = [
            t
            for t in db.table("R0").rows
            if t["R0.label"] == "needle"
        ]
        assert len(needle) == 1
        # the needle's key points outside R1's id range
        assert needle[0]["R0.key"] > 10

    def test_query_explains_needle(self):
        db = chain_database(3, rows_per_relation=30)
        canonical = canonicalize(chain_query(3), db.schema)
        report = nedexplain(canonical, chain_predicate(), database=db)
        assert not report.is_empty()
        (entry,) = [e for e in report.detailed if e.tid]
        assert entry.subquery.op == "join"

    def test_too_short_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_database(1, rows_per_relation=5)

    def test_scaled_database_dispatch(self):
        small = scaled_database("crime", 1)
        large = scaled_database("crime", 3)
        assert large.size() > small.size()


class TestCanonicalFromTree:
    def _tree(self, db):
        r = RelationLeaf(db.table("R").schema)
        s = RelationLeaf(db.table("S").schema)
        return Join(r, s, Renaming.of(("R.x", "S.x", "x")))

    def test_labels_and_aliases(self, tiny_db):
        canonical = canonical_from_tree(self._tree(tiny_db))
        assert canonical.node("m0").op == "join"
        assert canonical.aliases == {"R": "R", "S": "S"}

    def test_no_breakpoints_without_aggregation(self, tiny_db):
        canonical = canonical_from_tree(self._tree(tiny_db))
        assert canonical.breakpoints == ()

    def test_breakpoint_recovered_for_aggregates(self, tiny_db):
        join = self._tree(tiny_db)
        root = Aggregate(
            join, ("R.y",), (AggregateCall("count", "S.z", "n"),)
        )
        canonical = canonical_from_tree(root)
        assert canonical.breakpoint is join

    def test_explainable(self, tiny_db):
        canonical = canonical_from_tree(self._tree(tiny_db))
        report = nedexplain(
            canonical, CTuple({"R.y": 20}), database=tiny_db
        )
        # y=20 belongs to R:2 (x='b'), which has no S partner
        (entry,) = report.detailed
        assert entry.tid == "R:2"
        assert entry.subquery.op == "join"

    def test_alias_mapping_override(self, tiny_db):
        r1 = RelationLeaf(tiny_db.table("R").schema.renamed("R1"))
        r2 = RelationLeaf(tiny_db.table("R").schema.renamed("R2"))
        join = Join(r1, r2, Renaming.of(("R1.x", "R2.x", "x")))
        canonical = canonical_from_tree(
            join, aliases={"R1": "R", "R2": "R"}
        )
        result = evaluate_query(
            canonical.root,
            tiny_db.instance(),
            canonical.aliases,
        )
        assert result.result  # the self-join has matches


class TestPublicApi:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        import repro.baseline
        import repro.bench
        import repro.core
        import repro.relational
        import repro.workloads

        for module in (
            repro.baseline,
            repro.bench,
            repro.core,
            repro.relational,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_every_public_callable_has_docstring(self):
        import inspect

        import repro

        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.ismodule(obj):
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"undocumented public names: {missing}"
