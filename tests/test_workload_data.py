"""Validation of the synthetic workload data.

Every use case of Table 4 depends on specific facts holding in the
generated databases (DESIGN.md documents them as the "triggering
conditions").  These tests pin those facts down so a change to a
generator cannot silently break the reproduction story.
"""

import pytest

from repro.relational import evaluate_query
from repro.workloads import (
    build_crime_db,
    build_gov_db,
    build_imdb_db,
    get_canonical,
    get_database,
)


@pytest.fixture(scope="module")
def crime():
    return get_database("crime")


@pytest.fixture(scope="module")
def imdb():
    return get_database("imdb")


@pytest.fixture(scope="module")
def gov():
    return get_database("gov")


def _rows(db, table):
    return db.table(table).rows


class TestCrimeStory:
    def test_hank_has_a_sighting_but_no_crime_in_his_sector(self, crime):
        hank = crime.table("Person").by_tid("Person:2")
        sightings = [
            s
            for s in _rows(crime, "Saw")
            if s["Saw.hair"] == hank["Person.hair"]
            and s["Saw.clothes"] == hank["Person.clothes"]
        ]
        assert sightings
        witness_names = {s["Saw.witnessName"] for s in sightings}
        sectors = {
            w["Witness.sector"]
            for w in _rows(crime, "Witness")
            if w["Witness.name"] in witness_names
        }
        crime_sectors = {c["Crime.sector"] for c in _rows(crime, "Crime")}
        assert sectors and sectors.isdisjoint(crime_sectors)

    def test_roger_was_never_sighted(self, crime):
        roger = crime.table("Person").by_tid("Person:604")
        assert not any(
            s["Saw.hair"] == roger["Person.hair"]
            and s["Saw.clothes"] == roger["Person.clothes"]
            for s in _rows(crime, "Saw")
        )

    def test_q2_selection_is_empty(self, crime):
        """Sec. 4.2's 'empty intermediate result': no sector > 99."""
        assert all(
            c["Crime.sector"] <= 99 for c in _rows(crime, "Crime")
        )

    def test_kidnappings_never_meet_aiding(self, crime):
        kidnap_sectors = {
            c["Crime.sector"]
            for c in _rows(crime, "Crime")
            if c["Crime.type"] == "Kidnapping"
        }
        aiding_sectors = {
            c["Crime.sector"]
            for c in _rows(crime, "Crime")
            if c["Crime.type"] == "Aiding"
        }
        assert kidnap_sectors and aiding_sectors
        assert kidnap_sectors.isdisjoint(aiding_sectors)

    def test_susan_sector_has_no_aiding_pair(self, crime):
        susan = crime.table("Witness").by_tid("Witness:2")
        aiding_sectors = {
            c["Crime.sector"]
            for c in _rows(crime, "Crime")
            if c["Crime.type"] == "Aiding"
        }
        assert susan["Witness.sector"] not in aiding_sectors

    def test_audrey_hair_only_on_filtered_names(self, crime):
        audrey = crime.table("Person").by_tid("Person:51")
        sharers = [
            p["Person.name"]
            for p in _rows(crime, "Person")
            if p["Person.hair"] == audrey["Person.hair"]
            and p["Person.name"] != "Audrey"
        ]
        assert sharers
        assert all(name >= "B" for name in sharers)

    def test_betsy_counts_flip_around_eight(self, crime):
        """Crime9's condition ct > 8: true before the sector filter,
        false after."""
        canonical = get_canonical("Q8")
        result = evaluate_query(
            canonical.root, crime.instance(), canonical.aliases
        )
        breakpoint_out = result.output(canonical.breakpoint)
        before = sum(
            1
            for t in breakpoint_out
            if t["Person.name"] == "Betsy"
        )
        after = next(
            row["ct"]
            for row in result.result_values()
            if row["Person.name"] == "Betsy"
        )
        assert before > 8 >= after

    def test_q4_result_misses_audrey_but_not_everyone(self, crime):
        canonical = get_canonical("Q4")
        result = evaluate_query(
            canonical.root, crime.instance(), canonical.aliases
        )
        names = {row["P2.name"] for row in result.result_values()}
        assert "Audrey" not in names
        assert names  # survivors exist (they blind the baseline)

    def test_scaling_grows_rows(self):
        assert build_crime_db(scale=2).size() > build_crime_db().size()

    def test_deterministic(self):
        a, b = build_crime_db(), build_crime_db()
        assert a.size() == b.size()
        assert [t.values for t in a.table("Crime").rows] == [
            t.values for t in b.table("Crime").rows
        ]


class TestImdbStory:
    def test_avatar_fails_only_the_year_filter(self, imdb):
        avatar_m = imdb.table("Movies").by_tid("Movies:18")
        avatar_r = imdb.table("Ratings").by_tid("Ratings:124")
        assert avatar_m["Movies.year"] <= 2009
        assert avatar_r["Ratings.rating"] >= 8

    def test_christmas_story_survives_selections_and_name_join(self, imdb):
        movie = imdb.table("Movies").by_tid("Movies:4")
        rating = imdb.table("Ratings").by_tid("Ratings:245")
        assert movie["Movies.year"] > 2009
        assert rating["Ratings.rating"] >= 8
        assert movie["Movies.name"] == rating["Ratings.name"]

    def test_new_york_locations_belong_to_other_movies(self, imdb):
        ny_rows = [
            loc
            for loc in _rows(imdb, "Locations")
            if loc["Locations.locationId"] == "USANewYork"
        ]
        assert ny_rows
        assert all(loc["Locations.movieId"] != 4 for loc in ny_rows)

    def test_q5_result_contains_new_york_and_christmas_story(self, imdb):
        """Both constraint values appear in the result -- in different
        tuples -- which is exactly what blinds the baseline."""
        canonical = get_canonical("Q5")
        result = evaluate_query(
            canonical.root, imdb.instance(), canonical.aliases
        )
        values = result.result_values()
        assert any(v["name"] == "Christmas Story" for v in values)
        assert any(
            v["L.locationId"] == "USANewYork" for v in values
        )
        assert not any(
            v["name"] == "Christmas Story"
            and v["L.locationId"] == "USANewYork"
            for v in values
        )

    def test_deterministic(self):
        assert build_imdb_db().size() == build_imdb_db().size()


class TestGovStory:
    def test_christophers_split(self, gov):
        """Three fail byear > 1970; MURPHY passes it but is a
        Democrat."""
        failing = 0
        for tid in ("Congress:569", "Congress:1495", "Congress:773"):
            assert gov.table("Congress").by_tid(tid)[
                "Congress.byear"
            ] <= 1970
            failing += 1
        murphy = gov.table("Congress").by_tid("Congress:1072")
        assert murphy["Congress.byear"] > 1970
        affiliation = gov.table("AgencyAffiliation").by_tid(
            "AgencyAffiliation:1072"
        )
        assert affiliation["AgencyAffiliation.party"] == "Democrat"
        assert failing == 3

    def test_sponsor_467_has_no_senate_stage(self, gov):
        stages = [
            s
            for s in _rows(gov, "EarmarkStages")
            if s["EarmarkStages.sponsor"] == 467
        ]
        assert len(stages) == 3
        assert all(
            s["EarmarkStages.substage"] != "Senate Committee"
            for s in stages
        )

    def test_lugar_earmarks_all_small(self, gov):
        lugar_stage_earmarks = {
            s["EarmarkStages.earmark"]
            for s in _rows(gov, "EarmarkStages")
            if s["EarmarkStages.sponsor"] == 199
        }
        amounts = [
            e["Earmarks.camount"]
            for e in _rows(gov, "Earmarks")
            if e["Earmarks.id"] in lugar_stage_earmarks
        ]
        assert amounts and all(a < 1000 for a in amounts)

    def test_large_earmarks_pass_a_senate_stage(self, gov):
        """Keeps Gov5's blame on a single join (EXPERIMENTS.md)."""
        staged = {}
        for s in _rows(gov, "EarmarkStages"):
            staged.setdefault(s["EarmarkStages.earmark"], []).append(
                s["EarmarkStages.substage"]
            )
        for e in _rows(gov, "Earmarks"):
            if e["Earmarks.camount"] >= 1000 and e["Earmarks.id"] >= 10_000:
                assert "Senate Committee" in staged[e["Earmarks.id"]]

    def test_bennett_sum_flips_at_substage_filter(self, gov):
        bennett_pairs = [
            (s["EarmarkStages.earmark"], s["EarmarkStages.substage"])
            for s in _rows(gov, "EarmarkStages")
            if s["EarmarkStages.sponsor"] == 88
        ]
        amounts = {
            e["Earmarks.id"]: e["Earmarks.camount"]
            for e in _rows(gov, "Earmarks")
        }
        total = sum(amounts[eid] for eid, _ in bennett_pairs)
        senate = sum(
            amounts[eid]
            for eid, stage in bennett_pairs
            if stage == "Senate Committee"
        )
        assert total == 10870 and senate == 10000

    def test_john_is_a_texas_democrat(self, gov):
        john = gov.table("Congress").by_tid("Congress:772")
        assert john["Congress.lastname"] == "JOHN"
        affiliation = gov.table("AgencyAffiliation").by_tid(
            "AgencyAffiliation:772"
        )
        assert affiliation["AgencyAffiliation.party"] == "Democrat"
        assert affiliation["AgencyAffiliation.state"] != "NY"

    def test_no_sponsor_named_john(self, gov):
        assert not any(
            s["Sponsors.sponsorln"] == "JOHN"
            for s in _rows(gov, "Sponsors")
        )

    def test_union_branches_have_results(self, gov):
        canonical = get_canonical("Q12")
        result = evaluate_query(
            canonical.root, gov.instance(), canonical.aliases
        )
        names = {row["name"] for row in result.result_values()}
        assert "NADLER" in names and "Schumer" in names

    def test_gov_is_the_largest_database(self, gov):
        assert gov.size() > get_database("crime").size()
        assert gov.size() > get_database("imdb").size()

    def test_deterministic(self):
        assert build_gov_db().size() == build_gov_db().size()
