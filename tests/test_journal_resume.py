"""Crash-safe batch journal: WAL semantics, resume, kill/resume diff.

The differential acceptance test at the bottom SIGKILLs a journaled CLI
batch mid-run (via the deterministic ``REPRO_JOURNAL_CRASH_AFTER``
hook -- the journal kills its own process right after the N-th record
is durably fsync-ed, no racy poll-and-kill), resumes it, and asserts
the merged ``--json`` outcomes are byte-for-byte identical to an
uninterrupted run.  Both runs execute under ``REPRO_MANUAL_CLOCK`` so
every reported duration is deterministically ``0.0``.

Set ``REPRO_CHAOS_ARTIFACT_DIR`` to persist the journals outside the
pytest tmpdir -- the ``chaos-resume`` CI job points it at a directory
it uploads when the test fails.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core import NedExplain, canonicalize
from repro.errors import ConfigurationError, JournalError
from repro.relational import EvaluationCache
from repro.relational.csv_io import save_database
from repro.robustness import (
    BatchJournal,
    FaultPlan,
    FaultSpec,
    ReplayedOutcome,
    inject,
)
from repro.robustness.journal import JOURNAL_VERSION, _checksum
from repro.workloads.generator import chain_database, chain_query

_SRC = str(Path(repro.__file__).resolve().parents[1])

QUESTIONS = ["(R0.label: needle)", "(R0.label: r0v1)", "(R2.label: r2v3)"]


def _setup():
    db = chain_database(3, rows_per_relation=12)
    canonical = canonicalize(chain_query(3), db.schema)
    return db, canonical


_DB, _CANONICAL = _setup()


def _engine():
    return NedExplain(_CANONICAL, database=_DB, cache=EvaluationCache())


def _outcome_dict(question="(q: 1)", ok=True):
    return {
        "question": question,
        "ok": ok,
        "report": {"answers": []},
        "failure": None,
        "attempts": 1,
        "degradation_level": "full",
        "baseline": None,
    }


# ---------------------------------------------------------------------------
# WAL unit semantics
# ---------------------------------------------------------------------------
class TestBatchJournal:
    def test_record_and_resume_round_trip(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
            journal.record(1, "(q: 2)", _outcome_dict("(q: 2)"))
            assert len(journal) == 2
            assert journal.replayable_count == 0  # all fresh appends

        resumed = BatchJournal(path, resume=True)
        assert len(resumed) == 2
        assert resumed.replayable_count == 2
        assert resumed.completed(0, "(q: 1)") == _outcome_dict()
        assert resumed.completed(2, "(q: 3)") is None
        resumed.close()

    def test_without_resume_existing_journal_is_truncated(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
        with BatchJournal(path) as journal:
            assert len(journal) == 0
        assert path.read_text() == ""

    def test_question_mismatch_raises_journal_error(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
        resumed = BatchJournal(path, resume=True)
        with pytest.raises(JournalError):
            resumed.completed(0, "(q: OTHER)")
        resumed.close()

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "index": 1, "quest')  # power cut
        resumed = BatchJournal(path, resume=True)
        assert len(resumed) == 1
        assert resumed.discarded == 1
        assert resumed.completed(0, "(q: 1)") is not None
        resumed.close()

    def test_replay_stops_at_first_corrupt_record(self, tmp_path):
        """Records after a checksum failure are not trusted, even if
        they verify individually -- append-only logs are only
        trustworthy up to their first corruption."""
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
            journal.record(1, "(q: 2)", _outcome_dict("(q: 2)"))
            journal.record(2, "(q: 3)", _outcome_dict("(q: 3)"))
        lines = path.read_text().splitlines()
        tampered = json.loads(lines[1])
        tampered["outcome"]["ok"] = False  # flip a bit, keep checksum
        lines[1] = json.dumps(tampered, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        resumed = BatchJournal(path, resume=True)
        assert resumed.completed(0, "(q: 1)") is not None
        assert resumed.completed(1, "(q: 2)") is None
        assert resumed.completed(2, "(q: 3)") is None  # after the cut
        assert resumed.discarded == 1
        resumed.close()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        entry = {
            "v": JOURNAL_VERSION + 1,
            "index": 0,
            "question": "(q: 1)",
            "outcome": _outcome_dict(),
        }
        entry["checksum"] = _checksum(entry)
        path.write_text(json.dumps(entry, sort_keys=True) + "\n")
        resumed = BatchJournal(path, resume=True)
        assert len(resumed) == 0
        assert resumed.discarded == 1
        resumed.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = BatchJournal(tmp_path / "batch.jsonl")
        journal.close()
        with pytest.raises(ConfigurationError):
            journal.record(0, "(q: 1)", _outcome_dict())

    def test_missing_parent_directory_raises_journal_error(
        self, tmp_path
    ):
        """A typo'd journal path fails loudly with the path in the
        message -- a durability artifact must never be silently
        journaled into a freshly invented directory."""
        path = tmp_path / "deep" / "nested" / "batch.jsonl"
        with pytest.raises(JournalError) as excinfo:
            BatchJournal(path)
        assert str(path.parent) in str(excinfo.value)
        assert not path.exists()

    def test_unopenable_journal_raises_journal_error(
        self, tmp_path, monkeypatch
    ):
        """OS-level open failures surface as JournalError (with the
        path), not bare OSError.  The open goes through the module
        hook because the suite may run as root, where permission bits
        on a chmod-0 directory do not bite."""
        from repro.robustness import journal as journal_module

        path = tmp_path / "batch.jsonl"

        def _refuse(p, mode):
            raise PermissionError(13, "Permission denied", str(p))

        monkeypatch.setattr(
            journal_module, "_open_journal_file", _refuse
        )
        with pytest.raises(JournalError) as excinfo:
            BatchJournal(path)
        assert str(path) in str(excinfo.value)
        assert "Permission denied" in str(excinfo.value)

    def test_readonly_directory_raises_journal_error(self, tmp_path):
        """The real permission-denied path (skipped as root, where
        chmod does not restrict access)."""
        if os.geteuid() == 0:
            pytest.skip("running as root: chmod cannot deny access")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            with pytest.raises(JournalError) as excinfo:
                BatchJournal(locked / "batch.jsonl")
            assert str(locked) in str(excinfo.value)
        finally:
            locked.chmod(0o700)

    def test_out_of_order_appends_resume_by_identity(self, tmp_path):
        """Parallel workers journal in completion order; resume matches
        records by (index, question digest), not file position."""
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(2, "(q: 3)", _outcome_dict("(q: 3)"))
            journal.record(0, "(q: 1)", _outcome_dict())
        resumed = BatchJournal(path, resume=True)
        assert resumed.replayable_count == 2
        assert resumed.completed(0, "(q: 1)") == _outcome_dict()
        assert resumed.completed(2, "(q: 3)") == _outcome_dict("(q: 3)")
        assert resumed.completed(1, "(q: 2)") is None
        resumed.close()

    def test_records_carry_the_question_digest(self, tmp_path):
        from repro.robustness import question_digest

        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
        record = json.loads(path.read_text())
        assert record["v"] == JOURNAL_VERSION
        assert record["qdigest"] == question_digest("(q: 1)")

    def test_tampered_digest_is_discarded(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            journal.record(0, "(q: 1)", _outcome_dict())
        record = json.loads(path.read_text())
        record["qdigest"] = "0" * 16  # forge, then re-checksum
        record.pop("checksum")
        record["checksum"] = _checksum(record)
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        resumed = BatchJournal(path, resume=True)
        assert resumed.replayable_count == 0
        assert resumed.discarded == 1
        resumed.close()

    def test_concurrent_appends_are_serialized(self, tmp_path):
        import threading

        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            threads = [
                threading.Thread(
                    target=journal.record,
                    args=(i, f"(q: {i})", _outcome_dict(f"(q: {i})")),
                )
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # every record is a whole, verifiable line: nothing interleaved
        resumed = BatchJournal(path, resume=True)
        assert resumed.replayable_count == 16
        assert resumed.discarded == 0
        for i in range(16):
            assert resumed.completed(i, f"(q: {i})") is not None
        resumed.close()


# ---------------------------------------------------------------------------
# explain_each integration: journaling and replay
# ---------------------------------------------------------------------------
class TestJournaledBatch:
    def test_journaled_batch_records_every_outcome(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            outcomes = _engine().explain_each(QUESTIONS, journal=journal)
        assert len(outcomes) == len(QUESTIONS)
        lines = path.read_text().splitlines()
        assert len(lines) == len(QUESTIONS)
        for line, outcome in zip(lines, outcomes):
            record = json.loads(line)
            assert record["outcome"] == json.loads(
                json.dumps(outcome.to_dict(), default=str)
            )

    def test_resume_replays_without_reexecuting(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            first = _engine().explain_each(QUESTIONS, journal=journal)

        # Re-running under a plan that fails EVERY site invocation
        # proves the replay path never re-executes the questions.
        poison = FaultPlan(
            [
                FaultSpec(site, at_call=i)
                for site in ("compatible.find", "cache.lookup")
                for i in range(32)
            ]
        )
        with BatchJournal(path, resume=True) as journal:
            with inject(poison):
                second = _engine().explain_each(
                    QUESTIONS, journal=journal
                )
        assert not poison.fired  # nothing was evaluated
        assert all(isinstance(o, ReplayedOutcome) for o in second)
        assert all(o.replayed for o in second)
        for fresh, replayed in zip(first, second):
            assert replayed.to_dict() == json.loads(
                json.dumps(fresh.to_dict(), default=str)
            )
            assert replayed.ok == fresh.ok

    def test_partial_journal_computes_only_the_remainder(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        with BatchJournal(path) as journal:
            _engine().explain_each(QUESTIONS[:1], journal=journal)

        with BatchJournal(path, resume=True) as journal:
            outcomes = _engine().explain_each(QUESTIONS, journal=journal)
        assert outcomes[0].replayed
        assert not outcomes[1].replayed
        assert not outcomes[2].replayed
        # the journal now covers the full batch
        with BatchJournal(path, resume=True) as journal:
            assert len(journal) == len(QUESTIONS)

    def test_failed_outcomes_are_journalled_and_replayed(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        questions = [QUESTIONS[0], "(R0.nope: x)"]
        with BatchJournal(path) as journal:
            first = _engine().explain_each(questions, journal=journal)
        assert first[1].degradation_level == "failed"
        with BatchJournal(path, resume=True) as journal:
            second = _engine().explain_each(questions, journal=journal)
        assert second[1].replayed
        assert not second[1].ok
        assert second[1].degradation_level == "failed"


# ---------------------------------------------------------------------------
# Differential: SIGKILL mid-batch, resume, compare with a clean run
# ---------------------------------------------------------------------------
class TestKillResumeDifferential:
    """The resume proof of docs/robustness.md, end to end over the CLI."""

    CLI_QUESTIONS = [
        "(A.name: Homer)",
        "(A.name: Vergil)",
        "(A.name: Sappho)",
    ]

    def _database_dir(self, root: Path) -> Path:
        from repro import Database

        db = Database()
        db.create_table("A", ["aid", "name", "dob"], key="aid")
        db.insert("A", aid="a1", name="Homer", dob=-800)
        db.insert("A", aid="a2", name="Vergil", dob=-70)
        db.insert("A", aid="a3", name="Sappho", dob=-630)
        save_database(db, root / "db")
        return root / "db"

    def _cli(self, data_dir: Path, journal: Path, resume: bool = False):
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "explain",
            "--data",
            str(data_dir),
            "--sql",
            "SELECT A.name FROM A WHERE A.dob > -800",
            "--json",
            "--journal",
            str(journal),
        ]
        for question in self.CLI_QUESTIONS:
            argv += ["--why-not", question]
        if resume:
            argv.append("--resume")
        return argv

    def _env(self, crash_after: int | None = None) -> dict:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        # deterministic clock: all reported durations are 0.0, making
        # the two --json documents comparable byte for byte
        env["REPRO_MANUAL_CLOCK"] = "1"
        env.pop("REPRO_JOURNAL_CRASH_AFTER", None)
        if crash_after is not None:
            env["REPRO_JOURNAL_CRASH_AFTER"] = str(crash_after)
        return env

    def _artifact_dir(self, tmp_path: Path) -> Path:
        configured = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
        if configured:
            path = Path(configured)
            path.mkdir(parents=True, exist_ok=True)
            return path
        return tmp_path

    def test_killed_batch_resumes_to_identical_outcomes(self, tmp_path):
        data_dir = self._database_dir(tmp_path)
        artifacts = self._artifact_dir(tmp_path)
        clean_journal = artifacts / "clean.jsonl"
        killed_journal = artifacts / "killed.jsonl"

        # 1. the uninterrupted oracle run
        clean = subprocess.run(
            self._cli(data_dir, clean_journal),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert clean.returncode == 0, clean.stderr
        clean_doc = json.loads(clean.stdout)

        # 2. the same batch, killed right after the first record is
        #    durable (SIGKILL: no atexit, no flush, no cleanup)
        killed = subprocess.run(
            self._cli(data_dir, killed_journal),
            capture_output=True,
            text=True,
            env=self._env(crash_after=1),
            timeout=120,
        )
        assert killed.returncode == -signal.SIGKILL
        survived = killed_journal.read_text().splitlines()
        assert len(survived) == 1  # exactly the durable prefix

        # 3. resume and merge
        resumed = subprocess.run(
            self._cli(data_dir, killed_journal, resume=True),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        resumed_doc = json.loads(resumed.stdout)

        # 4. the merged outcomes are byte-for-byte the clean run's
        assert json.dumps(
            resumed_doc["outcomes"], sort_keys=True
        ) == json.dumps(clean_doc["outcomes"], sort_keys=True)
        assert len(resumed_doc["outcomes"]) == len(self.CLI_QUESTIONS)
        assert all(o["ok"] for o in resumed_doc["outcomes"])

    def test_crash_after_second_record(self, tmp_path):
        """Killing one record later still leaves a loadable prefix."""
        data_dir = self._database_dir(tmp_path)
        journal = tmp_path / "killed2.jsonl"
        killed = subprocess.run(
            self._cli(data_dir, journal),
            capture_output=True,
            text=True,
            env=self._env(crash_after=2),
            timeout=120,
        )
        assert killed.returncode == -signal.SIGKILL
        assert len(journal.read_text().splitlines()) == 2
        resumed = BatchJournal(journal, resume=True)
        assert resumed.replayable_count == 2
        assert resumed.discarded == 0
        resumed.close()


# ---------------------------------------------------------------------------
# Parallel differentials: workers=4 byte-identity, SIGKILL resume under
# concurrency, and the SIGINT graceful-drain proof (exit code 5)
# ---------------------------------------------------------------------------
class TestParallelDrainAndResume:
    """The concurrency half of the resume proof, end to end over the CLI."""

    NAMES = ["Homer", "Vergil", "Sappho", "Ovid", "Hesiod", "Pindar"]
    CLI_QUESTIONS = [f"(A.name: {name})" for name in NAMES]

    def _database_dir(self, root: Path) -> Path:
        from repro import Database

        db = Database()
        db.create_table("A", ["aid", "name", "dob"], key="aid")
        for n, (name, dob) in enumerate(
            zip(self.NAMES, [-800, -70, -630, -43, -750, -518])
        ):
            db.insert("A", aid=f"a{n}", name=name, dob=dob)
        save_database(db, root / "db")
        return root / "db"

    def _cli(
        self,
        data_dir: Path,
        journal: Path | None = None,
        resume: bool = False,
        workers: int | None = None,
    ):
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "explain",
            "--data",
            str(data_dir),
            "--sql",
            "SELECT A.name FROM A WHERE A.dob > -800",
            "--json",
            "--batch",
        ]
        if journal is not None:
            argv += ["--journal", str(journal)]
        for question in self.CLI_QUESTIONS:
            argv += ["--why-not", question]
        if resume:
            argv.append("--resume")
        if workers is not None:
            argv += ["--workers", str(workers)]
        return argv

    def _env(
        self,
        crash_after: int | None = None,
        sigint_after: int | None = None,
    ) -> dict:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_MANUAL_CLOCK"] = "1"
        env.pop("REPRO_JOURNAL_CRASH_AFTER", None)
        env.pop("REPRO_JOURNAL_SIGINT_AFTER", None)
        if crash_after is not None:
            env["REPRO_JOURNAL_CRASH_AFTER"] = str(crash_after)
        if sigint_after is not None:
            env["REPRO_JOURNAL_SIGINT_AFTER"] = str(sigint_after)
        return env

    def _artifact_dir(self, tmp_path: Path) -> Path:
        configured = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
        if configured:
            path = Path(configured)
            path.mkdir(parents=True, exist_ok=True)
            return path
        return tmp_path

    def test_workers4_json_is_byte_identical_to_sequential(self, tmp_path):
        """The acceptance lock: under REPRO_MANUAL_CLOCK, a --workers 4
        run emits the byte-for-byte --json document of the sequential
        run -- outcomes, cache statistics, exit code, everything."""
        data_dir = self._database_dir(tmp_path)
        sequential = subprocess.run(
            self._cli(data_dir),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        parallel = subprocess.run(
            self._cli(data_dir, workers=4),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert sequential.returncode == 0, sequential.stderr
        assert parallel.returncode == 0, parallel.stderr
        assert parallel.stdout == sequential.stdout

    def test_parallel_killed_batch_resumes_to_identical_outcomes(
        self, tmp_path
    ):
        """SIGKILL mid-batch with 4 workers journalling out of order;
        the resumed outcomes are byte-identical to a clean run's."""
        data_dir = self._database_dir(tmp_path)
        artifacts = self._artifact_dir(tmp_path)
        clean_journal = artifacts / "parallel-clean.jsonl"
        killed_journal = artifacts / "parallel-killed.jsonl"

        clean = subprocess.run(
            self._cli(data_dir, clean_journal),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert clean.returncode == 0, clean.stderr
        clean_doc = json.loads(clean.stdout)

        killed = subprocess.run(
            self._cli(data_dir, killed_journal, workers=4),
            capture_output=True,
            text=True,
            env=self._env(crash_after=2),
            timeout=120,
        )
        assert killed.returncode == -signal.SIGKILL
        # the durable prefix: at least the 2 records that triggered the
        # kill (another worker may have squeezed one in before dying)
        survived = killed_journal.read_text().splitlines()
        assert 2 <= len(survived) < len(self.CLI_QUESTIONS)

        resumed = subprocess.run(
            self._cli(data_dir, killed_journal, resume=True, workers=4),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        resumed_doc = json.loads(resumed.stdout)
        assert json.dumps(
            resumed_doc["outcomes"], sort_keys=True
        ) == json.dumps(clean_doc["outcomes"], sort_keys=True)

    def test_sigint_drain_exits_5_then_resumes_cleanly(self, tmp_path):
        """A SIGINT mid-batch triggers a graceful drain: in-flight
        questions finish and are journalled, the rest become explicit
        cancelled outcomes, the exit code is 5 -- and a --resume run
        completes the batch to the clean run's exact outcomes."""
        data_dir = self._database_dir(tmp_path)
        artifacts = self._artifact_dir(tmp_path)
        clean_journal = artifacts / "drain-clean.jsonl"
        drained_journal = artifacts / "drained.jsonl"

        clean = subprocess.run(
            self._cli(data_dir, clean_journal),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert clean.returncode == 0, clean.stderr
        clean_doc = json.loads(clean.stdout)

        drained = subprocess.run(
            self._cli(data_dir, drained_journal, workers=2),
            capture_output=True,
            text=True,
            env=self._env(sigint_after=1),
            timeout=120,
        )
        assert drained.returncode == 5, (
            drained.stdout,
            drained.stderr,
        )
        drained_doc = json.loads(drained.stdout)
        assert drained_doc["drained_by"] == "SIGINT"
        outcomes = drained_doc["outcomes"]
        assert len(outcomes) == len(self.CLI_QUESTIONS)
        completed = [o for o in outcomes if o["ok"]]
        cancelled = [
            o
            for o in outcomes
            if o["degradation_level"] == "cancelled"
        ]
        assert len(completed) + len(cancelled) == len(outcomes)
        assert completed, "the drain must finish in-flight questions"
        # every completed question is durably journalled; cancelled
        # ones are not (a resume recomputes them)
        journalled = drained_journal.read_text().splitlines()
        assert len(journalled) == len(completed)

        resumed = subprocess.run(
            self._cli(data_dir, drained_journal, resume=True, workers=2),
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        resumed_doc = json.loads(resumed.stdout)
        assert json.dumps(
            resumed_doc["outcomes"], sort_keys=True
        ) == json.dumps(clean_doc["outcomes"], sort_keys=True)
