"""Tests for table statistics and cardinality estimation."""

import pytest

from repro.errors import UnknownRelationError
from repro.core import JoinPair, SPJASpec, canonicalize
from repro.obs import Tracer, tracing
from repro.relational import Database, attr_cmp
from repro.relational.statistics import (
    CardinalityEstimator,
    actuals_from_trace,
    collect_statistics,
    explain_plan,
)
from repro.relational.evaluator import evaluate_query


@pytest.fixture()
def stats_db():
    db = Database("stats")
    db.create_table("T", ["id", "v", "w"], key="id")
    for i in range(10):
        db.insert("T", id=i, v=i % 5, w=None if i < 2 else "x")
    db.create_table("U", ["id", "v"], key="id")
    for i in range(20):
        db.insert("U", id=i, v=i % 5)
    return db


class TestCollectStatistics:
    def test_row_and_distinct_counts(self, stats_db):
        stats = collect_statistics(stats_db)
        t = stats["T"]
        assert t.row_count == 10
        assert t.column("v").distinct_count == 5
        assert t.column("id").distinct_count == 10

    def test_null_accounting(self, stats_db):
        column = collect_statistics(stats_db)["T"].column("w")
        assert column.null_count == 2
        assert column.null_fraction == pytest.approx(0.2)

    def test_min_max(self, stats_db):
        column = collect_statistics(stats_db)["T"].column("id")
        assert column.minimum == 0 and column.maximum == 9

    def test_unknown_column(self, stats_db):
        with pytest.raises(UnknownRelationError):
            collect_statistics(stats_db)["T"].column("zz")

    def test_equality_selectivity(self, stats_db):
        column = collect_statistics(stats_db)["T"].column("v")
        assert column.equality_selectivity() == pytest.approx(1 / 5)

    def test_range_selectivity_interpolates(self, stats_db):
        column = collect_statistics(stats_db)["T"].column("id")
        # id > 4.5 over [0, 9]: half the rows
        assert column.range_selectivity(">", 4.5) == pytest.approx(0.5)
        assert column.range_selectivity("<", 0) == 0.0
        assert column.range_selectivity(">", -1) == 1.0

    def test_single_valued_column(self):
        db = Database()
        db.create_table("S", ["id", "c"], key="id")
        db.insert("S", id=1, c=7)
        db.insert("S", id=2, c=7)
        column = collect_statistics(db)["S"].column("c")
        assert column.range_selectivity(">", 5) == 1.0
        assert column.range_selectivity(">", 7) == 0.0


class TestCardinalityEstimator:
    def test_leaf_estimate(self, stats_db):
        spec = SPJASpec(aliases={"T": "T"}, projection=("T.v",))
        canonical = canonicalize(spec, stats_db.schema)
        estimator = CardinalityEstimator(stats_db, canonical.aliases)
        leaf = canonical.node("T")
        assert estimator.estimate(leaf) == 10.0

    def test_selection_estimate(self, stats_db):
        spec = SPJASpec(
            aliases={"T": "T"},
            selections=[attr_cmp("T.v", "=", 3)],
            projection=("T.id",),
        )
        canonical = canonicalize(spec, stats_db.schema)
        estimator = CardinalityEstimator(stats_db, canonical.aliases)
        assert estimator.estimate(canonical.root) == pytest.approx(
            10 / 5, rel=0.01
        )

    def test_join_estimate_close_to_actual(self, stats_db):
        spec = SPJASpec(
            aliases={"T": "T", "U": "U"},
            joins=[JoinPair("T.v", "U.v")],
            projection=("T.id", "U.id"),
        )
        canonical = canonicalize(spec, stats_db.schema)
        estimator = CardinalityEstimator(stats_db, canonical.aliases)
        estimated = estimator.estimate(canonical.root)
        actual = len(
            evaluate_query(
                canonical.root, stats_db.instance(), canonical.aliases
            ).result
        )
        # containment assumption: |T|*|U| / max(ndv) = 10*20/5 = 40
        assert estimated == pytest.approx(actual, rel=0.01)

    def test_aggregate_estimate_bounded_by_groups(self, stats_db):
        from repro.relational import AggregateCall

        spec = SPJASpec(
            aliases={"T": "T"},
            group_by=("T.v",),
            aggregates=(AggregateCall("count", "T.id", "n"),),
        )
        canonical = canonicalize(spec, stats_db.schema)
        estimator = CardinalityEstimator(stats_db, canonical.aliases)
        assert estimator.estimate(canonical.root) == 5.0

    def test_explain_plan_renders(self, stats_db):
        spec = SPJASpec(
            aliases={"T": "T", "U": "U"},
            joins=[JoinPair("T.v", "U.v")],
            selections=[attr_cmp("T.id", ">", 4)],
            projection=("T.id",),
        )
        canonical = canonicalize(spec, stats_db.schema)
        text = explain_plan(
            canonical.root, stats_db, canonical.aliases
        )
        assert "est=" in text and "join" in text

    def test_explain_plan_with_actuals(self, stats_db):
        spec = SPJASpec(aliases={"T": "T"}, projection=("T.v",))
        canonical = canonicalize(spec, stats_db.schema)
        result = evaluate_query(
            canonical.root, stats_db.instance(), canonical.aliases
        )
        actuals = {
            id(node): len(result.output(node))
            for node in canonical.root.postorder()
        }
        text = explain_plan(
            canonical.root, stats_db, canonical.aliases, actuals
        )
        assert "actual=" in text

    def test_estimates_on_paper_workload(self):
        """Sanity: estimates stay within an order of magnitude of the
        actual sizes for the crime Q1 tree."""
        from repro.workloads import get_canonical, get_database

        db = get_database("crime")
        canonical = get_canonical("Q1")
        estimator = CardinalityEstimator(db, canonical.aliases)
        result = evaluate_query(
            canonical.root, db.instance(), canonical.aliases
        )
        for node in canonical.root.postorder():
            actual = len(result.output(node))
            estimated = estimator.estimate(node)
            if actual >= 10:
                assert estimated == pytest.approx(actual, rel=9.0)


class TestActualsFromTrace:
    """Per-node actuals recovered from operator spans.

    Regression: the columnar engine emits one span per batch (chunk),
    so a node's actual cardinality is the *sum* of its spans within
    one evaluation -- the historical last-span-wins rule undercounted
    every multi-chunk node by keeping only the final chunk.
    """

    def _wide_db(self, rows=1100, name="wide"):
        db = Database(name)
        db.create_table("T", ["id", "v"], key="id")
        for i in range(rows):
            db.insert("T", id=i, v=i % 7)
        return db

    def _spec(self):
        return SPJASpec(
            aliases={"T": "T"},
            selections=[attr_cmp("T.v", ">", 2)],
            projection=("T.id",),
        )

    def test_multi_chunk_spans_are_summed(self):
        """1100 rows > one batch: every node records several spans,
        and the summed actuals equal the true output cardinalities."""
        db = self._wide_db()
        canonical = canonicalize(self._spec(), db.schema)
        tracer = Tracer()
        with tracing(tracer):
            result = evaluate_query(
                canonical.root, db.instance(), use_columnar=True
            )
        nodes = list(canonical.root.postorder())
        spans = [
            s
            for s in tracer.by_category("operator")
            if "rows_out" in s.tags
        ]
        assert len(spans) > len(nodes), "the scenario must chunk"
        actuals = actuals_from_trace(tracer, canonical.root)
        for node in nodes:
            assert actuals[id(node)] == len(result.output(node))

    def test_last_evaluation_wins_across_evaluations(self):
        """Two columnar evaluations of the same tree in one trace
        (different instances): the recovered actuals are the *second*
        evaluation's sums, not a mix of both."""
        small = self._wide_db(rows=40, name="small")
        big = self._wide_db(rows=1100, name="big")
        canonical = canonicalize(self._spec(), small.schema)
        tracer = Tracer()
        with tracing(tracer):
            evaluate_query(
                canonical.root, small.instance(), use_columnar=True
            )
            second = evaluate_query(
                canonical.root, big.instance(), use_columnar=True
            )
        actuals = actuals_from_trace(tracer, canonical.root)
        for node in canonical.root.postorder():
            assert actuals[id(node)] == len(second.output(node))

    def test_row_engine_spans_still_resolve(self):
        db = self._wide_db(rows=60, name="row-spans")
        canonical = canonicalize(self._spec(), db.schema)
        tracer = Tracer()
        with tracing(tracer):
            result = evaluate_query(canonical.root, db.instance())
        actuals = actuals_from_trace(tracer, canonical.root)
        for node in canonical.root.postorder():
            assert actuals[id(node)] == len(result.output(node))
