"""Unit tests for checkEarlyTermination (Alg. 2) on crafted states.

The integration tests check end-to-end behaviour; here we drive the
check directly through TabQ states to pin down each clause:

1. never terminate at position 0 or mid-level;
2. don't terminate while the previous (deeper) level has a non-picky
   subquery (live traces);
3. don't terminate while unprocessed relation leaves remain (they may
   still introduce compatible tuples);
4. terminate otherwise.
"""

import pytest

from repro.core import CTuple, NedExplain, TabQ, find_compatibles


@pytest.fixture()
def prepared(running_example):
    """Engine + a fresh TabQ for the Homer c-tuple."""
    db, canonical = running_example
    engine = NedExplain(canonical, database=db)
    instance = db.input_instance(canonical.aliases)
    tc = CTuple({"A.name": "Homer"})
    compat = find_compatibles(tc, instance)
    tabq = TabQ(canonical.root, instance, compat)
    return engine, tabq


def _index_of(tabq, label):
    for index in range(len(tabq)):
        if tabq[index].label == label:
            return index
    raise AssertionError(f"no entry {label}")


class TestCheckEarlyTermination:
    def test_never_at_position_zero(self, prepared):
        engine, tabq = prepared
        assert engine._check_early_termination(tabq, 0) is False

    def test_never_mid_level(self, prepared):
        """AB follows A at the same level: no level change, no check."""
        engine, tabq = prepared
        index = _index_of(tabq, "AB")
        assert tabq[index].level == tabq[index - 1].level
        assert engine._check_early_termination(tabq, index) is False

    def test_blocked_by_non_picky_previous_level(self, prepared):
        """m0 starts a new level, but leaf A below is non-picky."""
        engine, tabq = prepared
        tabq.mark_non_picky(tabq[_index_of(tabq, "A")])
        index = _index_of(tabq, "m0")
        assert engine._check_early_termination(tabq, index) is False

    def test_blocked_by_remaining_leaf(self, prepared):
        """Even with a fully picky previous level, the B leaf still
        waits at a shallower level: it could carry compatibles."""
        engine, tabq = prepared
        index = _index_of(tabq, "m0")
        # previous level (A, AB) has no non-picky entries at all
        assert engine._check_early_termination(tabq, index) is False

    def test_terminates_when_all_dead_and_no_leaves_left(self, prepared):
        """At the aggregation node: the selection below is picky and
        no relation leaf remains."""
        engine, tabq = prepared
        select_entry = tabq[_index_of(tabq, "m2")]
        tabq.mark_picky(select_entry, ())
        index = _index_of(tabq, "m3")
        assert engine._check_early_termination(tabq, index) is True

    def test_does_not_terminate_when_selection_non_picky(self, prepared):
        engine, tabq = prepared
        tabq.mark_non_picky(tabq[_index_of(tabq, "m2")])
        index = _index_of(tabq, "m3")
        assert engine._check_early_termination(tabq, index) is False


class TestTabQStructure:
    def test_order_is_decreasing_level(self, prepared):
        _engine, tabq = prepared
        levels = [entry.level for entry in tabq]
        assert levels == sorted(levels, reverse=True)

    def test_parents_wired(self, prepared):
        _engine, tabq = prepared
        root_entry = tabq[len(tabq) - 1]
        assert root_entry.parent is None
        for entry in tabq:
            if entry is not root_entry:
                assert entry.parent is not None

    def test_leaf_initialization(self, prepared):
        """Leaves carry I_Q|Ri as input and Dir|Ri as compatibles
        (Table 1 of the paper)."""
        _engine, tabq = prepared
        a_entry = tabq[_index_of(tabq, "A")]
        assert len(a_entry.input) == 3
        assert [t.tid for t in a_entry.compatibles] == ["A:a1"]
        ab_entry = tabq[_index_of(tabq, "AB")]
        assert ab_entry.compatibles == []

    def test_entry_lookup_by_node(self, prepared):
        _engine, tabq = prepared
        entry = tabq[_index_of(tabq, "m1")]
        assert tabq.entry(entry.node) is entry
        assert tabq.position(entry) == _index_of(tabq, "m1")

    def test_entry_lookup_unknown_node(self, prepared, tiny_db):
        from repro.errors import EvaluationError
        from repro.relational import RelationLeaf

        _engine, tabq = prepared
        with pytest.raises(EvaluationError):
            tabq.entry(RelationLeaf(tiny_db.table("R").schema))

    def test_add_compatibles_dedupes(self, prepared):
        _engine, tabq = prepared
        entry = tabq[_index_of(tabq, "A")]
        before = len(entry.compatibles)
        entry.add_compatibles(list(entry.compatibles))
        assert len(entry.compatibles) == before

    def test_dump_lists_all_entries(self, prepared):
        _engine, tabq = prepared
        dump = tabq.dump()
        for label in ("A", "AB", "B", "m0", "m1", "m2", "m3"):
            assert label in dump
