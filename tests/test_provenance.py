"""Tests for how-provenance polynomials (the paper's [8] reference)."""

import pytest

from repro.relational import evaluate_query
from repro.relational.provenance import (
    Monomial,
    Polynomial,
    explain_derivations,
    how_provenance_of,
    value_provenance,
)


# ---------------------------------------------------------------------------
# Algebraic structure
# ---------------------------------------------------------------------------
class TestMonomial:
    def test_of_counts_multiplicities(self):
        m = Monomial.of("a", "a", "b")
        assert m.factors == (("a", 2), ("b", 1))

    def test_multiplication(self):
        assert Monomial.of("a") * Monomial.of("a", "b") == Monomial.of(
            "a", "a", "b"
        )

    def test_one_is_neutral(self):
        m = Monomial.of("a")
        assert Monomial.one() * m == m

    def test_render(self):
        assert Monomial.of("a", "a", "b").render() == "a^2*b"
        assert Monomial.one().render() == "1"

    def test_variables(self):
        assert Monomial.of("a", "b").variables == frozenset({"a", "b"})


class TestPolynomial:
    def test_addition_merges_terms(self):
        p = Polynomial.of_variable("a") + Polynomial.of_variable("a")
        assert p.render() == "2*a"

    def test_multiplication_distributes(self):
        p = (
            Polynomial.of_variable("a") + Polynomial.of_variable("b")
        ) * Polynomial.of_variable("c")
        assert p.render() == "a*c + b*c"

    def test_zero(self):
        zero = Polynomial.zero()
        assert zero.is_zero()
        assert (zero + Polynomial.of_variable("a")).render() == "a"
        assert (zero * Polynomial.of_variable("a")).is_zero()

    def test_derivation_count(self):
        p = Polynomial.of_variable("a") + Polynomial.of_variable("b")
        assert p.derivation_count() == 2

    def test_canonical_ordering(self):
        p1 = Polynomial.of_variable("b") + Polynomial.of_variable("a")
        p2 = Polynomial.of_variable("a") + Polynomial.of_variable("b")
        assert p1 == p2
        assert p1.render() == "a + b"

    def test_variables(self):
        p = Polynomial.of_variable("a") * Polynomial.of_variable("b")
        assert p.variables == frozenset({"a", "b"})


# ---------------------------------------------------------------------------
# Provenance of query results
# ---------------------------------------------------------------------------
class TestQueryProvenance:
    def test_join_tuples_are_products(self, running_example):
        """Q2's outputs have the monomials the paper shows in Table 2:
        t4*t7*t2, t4*t8*t1, t5*t9*t3 (with our tuple ids)."""
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        top_join = canonical.node("m1")
        polynomials = how_provenance_of(result, top_join)
        rendered = sorted(p.render() for p in polynomials.values())
        assert rendered == [
            "A:a1*AB:1*B:b2",
            "A:a1*AB:2*B:b1",
            "A:a2*AB:3*B:b3",
        ]

    def test_aggregate_group_is_product_of_members(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        (poly,) = how_provenance_of(result).values()
        assert poly.render() == "A:a2*AB:3*B:b3"

    def test_projection_alternatives_add(self, spj_example):
        """Two Homer books project to... distinct prices here; use a
        name-only projection to force duplicate values."""
        from repro.core import JoinPair, SPJASpec, canonicalize

        db, _ = spj_example
        spec = SPJASpec(
            aliases={"A": "A", "AB": "AB", "B": "B"},
            joins=[JoinPair("A.aid", "AB.aid"),
                   JoinPair("AB.bid", "B.bid")],
            projection=("A.name",),
        )
        canonical = canonicalize(spec, db.schema)
        result = evaluate_query(canonical.root, db.instance())
        collapsed = value_provenance(result)
        homer = next(
            entry
            for key, entry in collapsed.items()
            if dict(key)["A.name"] == "Homer"
        )
        _values, poly = homer
        # Homer appears via both of his books: a sum of two monomials
        assert poly.derivation_count() == 2
        assert poly.variables >= {"A:a1", "B:b1", "B:b2"}

    def test_explain_derivations_renders(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        text = explain_derivations(result)
        assert "Sophocles" in text and "A:a2" in text

    def test_empty_output(self, running_example):
        from repro.core import SPJASpec, canonicalize
        from repro.relational import attr_cmp

        db, _ = running_example
        spec = SPJASpec(
            aliases={"A": "A"},
            selections=[attr_cmp("A.name", "=", "Zeus")],
            projection=("A.name",),
        )
        canonical = canonicalize(spec, db.schema)
        result = evaluate_query(canonical.root, db.instance())
        assert explain_derivations(result) == "(empty)"
        assert how_provenance_of(result) == {}


# ---------------------------------------------------------------------------
# Top-down baseline equivalence (strategy tests live here to reuse
# the provenance fixtures' imports)
# ---------------------------------------------------------------------------
class TestTopDownStrategy:
    @pytest.mark.parametrize(
        "name", ["Crime1", "Crime5", "Crime6", "Crime8", "Imdb2", "Gov4"]
    )
    def test_same_answers_as_bottom_up(self, name):
        """The original paper: both traversals return the same set of
        answers (quoted in our Sec. 4 summary)."""
        from repro.baseline import WhyNotBaseline
        from repro.workloads import use_case_setup

        use_case, db, canonical = use_case_setup(name)
        bottom_up = WhyNotBaseline(canonical, database=db).explain(
            use_case.predicate
        )
        top_down = WhyNotBaseline(
            canonical, database=db, strategy="top-down"
        ).explain(use_case.predicate)
        assert bottom_up.answer_labels == top_down.answer_labels
        assert (
            bottom_up.satisfied_constraints
            == top_down.satisfied_constraints
        )

    def test_unknown_strategy_rejected(self):
        from repro.baseline import WhyNotBaseline
        from repro.errors import UnsupportedQueryError
        from repro.workloads import get_canonical, get_database

        with pytest.raises(UnsupportedQueryError):
            WhyNotBaseline(
                get_canonical("Q1"),
                database=get_database("crime"),
                strategy="sideways",
            )
