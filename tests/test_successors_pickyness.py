"""Unit tests for valid successors (Notation 2.1 / Alg. 3) and the
declarative pickyness oracle (Defs. 2.9-2.11, Property 2.1)."""

import pytest

from repro.core import (
    CTuple,
    find_compatibles,
    find_successors,
    is_picky_manipulation,
    is_picky_query,
    is_successor_wrt_query,
    picky_subqueries,
    trace_path,
    transitive_predecessors,
    valid_successors,
)
from repro.relational import Var, base_tuple, evaluate_query, var_cmp


@pytest.fixture()
def traced_example(running_example):
    """Running example: evaluation + compatibility for tc1 of Ex. 2.1."""
    db, canonical = running_example
    instance = db.input_instance(canonical.aliases)
    result = evaluate_query(canonical.root, db.instance())
    tc = CTuple(
        {"A.name": "Homer", "ap": Var("x1")}, var_cmp("x1", ">", 25)
    )
    compat = find_compatibles(tc, instance)
    homer = instance.relation("A").by_tid("A:a1")
    return db, canonical, result, compat, homer


# ---------------------------------------------------------------------------
# find_successors (Alg. 3 step semantics)
# ---------------------------------------------------------------------------
class TestFindSuccessors:
    def test_example_2_5_low_join(self, traced_example):
        """Q1 has two valid successors of t4 (Ex. 2.5)."""
        db, canonical, result, compat, homer = traced_example
        low_join = canonical.node("m0")
        step = find_successors(
            result.output(low_join),
            [homer],
            compat.valid_tids,
            compat.dir_tids,
        )
        assert len(step.successors) == 2
        assert step.blocked == ()
        assert step.origins_in == frozenset({"A:a1"})
        assert step.origins_out == frozenset({"A:a1"})
        assert step.died == frozenset()

    def test_selection_blocks_homer(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        low = find_successors(
            result.output(canonical.node("m0")),
            [homer],
            compat.valid_tids,
            compat.dir_tids,
        )
        mid = find_successors(
            result.output(canonical.node("m1")),
            list(low.successors),
            compat.valid_tids,
            compat.dir_tids,
        )
        step = find_successors(
            result.output(canonical.node("m2")),
            list(mid.successors),
            compat.valid_tids,
            compat.dir_tids,
        )
        assert step.successors == ()
        assert set(step.blocked) == set(mid.successors)
        assert step.died == frozenset({"A:a1"})

    def test_validity_rejects_foreign_lineage(self, running_example):
        """For (Homer, price 49), t4|><|t7|><|t2 is NOT a valid
        successor of t4 because t2 is outside D (Sec. 2.3)."""
        db, canonical = running_example
        instance = db.input_instance(canonical.aliases)
        result = evaluate_query(canonical.root, db.instance())
        tc = CTuple({"A.name": "Homer", "B.price": 49})
        compat = find_compatibles(tc, instance)
        homer = instance.relation("A").by_tid("A:a1")
        top_join = canonical.node("m1")
        step = find_successors(
            result.output(top_join),
            # Homer's two m0 successors enter m1's compatibles
            [
                t
                for t in result.output(canonical.node("m0"))
                if "A:a1" in t.lineage
            ],
            compat.valid_tids,
            compat.dir_tids,
        )
        # every join partner book is non-compatible: all blocked
        assert step.successors == ()
        assert step.died == frozenset({"A:a1"})

    def test_leaf_identity_successors(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        step = find_successors(
            [homer], [homer], compat.valid_tids, compat.dir_tids
        )
        assert step.successors == (homer,)


# ---------------------------------------------------------------------------
# Declarative oracle
# ---------------------------------------------------------------------------
class TestDeclarativePickyness:
    def test_transitive_predecessors(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        (t, *_) = [
            o
            for o in result.output(canonical.node("m1"))
            if "A:a1" in o.lineage
        ]
        preds = transitive_predecessors(t)
        assert homer in preds

    def test_is_successor_wrt_query(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        for t in result.output(canonical.node("m1")):
            expected = "A:a1" in t.lineage
            assert is_successor_wrt_query(t, homer) is expected

    def test_vs_at_each_level(self, traced_example):
        """VS shrinks from 2 (joins) to 0 (selection) for t4."""
        db, canonical, result, compat, homer = traced_example
        counts = {
            node.name: len(
                valid_successors(node, result, compat.valid_tids, homer)
            )
            for node in canonical.root.postorder()
            if node.name in {"m0", "m1", "m2", "m3"}
        }
        assert counts == {"m0": 2, "m1": 2, "m2": 0, "m3": 0}

    def test_picky_manipulation(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        select = canonical.node("m2")
        # the manipulation is picky for each of Homer's m1-successors
        for t in valid_successors(
            canonical.node("m1"), result, compat.valid_tids, homer
        ):
            assert is_picky_manipulation(
                select, result, compat.valid_tids, t
            )

    def test_picky_query_is_selection(self, traced_example):
        """Ex. 2.5: Q3 (the selection) is picky w.r.t. t4 and D."""
        db, canonical, result, compat, homer = traced_example
        select = canonical.node("m2")
        assert is_picky_query(select, result, compat.valid_tids, homer)
        assert not is_picky_query(
            canonical.node("m1"), result, compat.valid_tids, homer
        )

    def test_property_2_1_uniqueness(self, traced_example):
        """Property 2.1: at most one picky subquery per tuple."""
        db, canonical, result, compat, homer = traced_example
        picky = picky_subqueries(
            canonical.root, result, compat.valid_tids, homer
        )
        assert len(picky) == 1
        assert picky[0] is canonical.node("m2")

    def test_leaf_never_picky(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        leaf = canonical.node("A")
        assert not is_picky_query(leaf, result, compat.valid_tids, homer)

    def test_trace_path_diagnostic(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        path = trace_path(
            canonical.root, result, compat.valid_tids, homer
        )
        by_name = {node.name: count for node, count in path}
        assert by_name["m0"] == 2 and by_name["m2"] == 0

    def test_untraced_source_not_picky(self, traced_example):
        db, canonical, result, compat, homer = traced_example
        stranger = base_tuple("A", "A:zz", aid="zz", name="?", dob=0)
        assert not is_picky_manipulation(
            canonical.node("m2"), result, compat.valid_tids, stranger
        )
