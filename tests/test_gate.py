"""The perf gate: threshold algebra, MAD reduction, baseline I/O,
trajectory handling, and the injected-regression end-to-end proof.

The end-to-end tests are the gate's own acceptance criteria: a clean
tree passes ``check`` repeatedly without flakes, a deliberately
injected fault (extra comparisons, an artificial slowdown) makes it
exit nonzero with a machine-readable report naming the offending
benchmark, and reverting the fault makes it pass again.
"""

from __future__ import annotations

import json
import math
import time

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.bench.baselines import (
    BASELINE_FORMAT_VERSION,
    BaselineEntry,
    SuiteBaseline,
    baseline_path,
    read_suite_baseline,
    write_suite_baseline,
)
from repro.bench.gate import (
    CheckResult,
    Thresholds,
    allowed_regression_ms,
    append_trajectory_entry,
    calibrate,
    compare_measurement,
    diff_counters,
    main as gate_main,
    read_trajectory,
    render_trajectory,
    run_check,
    run_report,
    run_update,
    select_specs,
)
from repro.bench.runner import Measurement, mad, measure, reduce_samples
from repro.core import NedExplain
from repro.core.compatibility import CompatibleFinder
from repro.errors import ConfigurationError
from repro.robustness.budget import current_context

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
finite_ms = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite_ms, min_size=1, max_size=20)
positive_ms = st.floats(min_value=1e-3, max_value=1e4)
noise_ms = st.floats(min_value=0.0, max_value=100.0)
counter_names = st.text(
    alphabet="abcdefgh.xyz", min_size=1, max_size=10
)
counter_dicts = st.dictionaries(
    counter_names, st.integers(min_value=0, max_value=10**6), max_size=6
)
threshold_values = st.builds(
    Thresholds,
    rel_tolerance=st.floats(min_value=0, max_value=2),
    noise_mult=st.floats(min_value=0, max_value=20),
    abs_floor_ms=st.floats(min_value=0, max_value=10),
)


# ---------------------------------------------------------------------------
# MAD reduction
# ---------------------------------------------------------------------------
class TestMadReduction:
    @given(sample_lists)
    def test_non_negative(self, samples):
        assert mad(samples) >= 0

    @given(finite_ms, st.integers(min_value=1, max_value=10))
    def test_constant_samples_have_zero_mad(self, value, n):
        assert mad([value] * n) == 0.0

    @given(sample_lists, finite_ms)
    def test_shift_invariance(self, samples, shift):
        shifted = [s + shift for s in samples]
        assert math.isclose(
            mad(shifted), mad(samples), rel_tol=1e-9, abs_tol=1e-8
        )

    @given(sample_lists, st.floats(min_value=-100, max_value=100))
    def test_scale_equivariance(self, samples, factor):
        scaled = [s * factor for s in samples]
        assert math.isclose(
            mad(scaled),
            abs(factor) * mad(samples),
            rel_tol=1e-9,
            abs_tol=1e-8,
        )

    @given(
        st.lists(finite_ms, min_size=3, max_size=20),
        st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False
        ),
    )
    def test_single_outlier_robust(self, samples, outlier):
        # robustness: one wild outlier cannot drag the MAD beyond the
        # spread of the untouched samples (a standard deviation would
        # explode here -- this is why the gate's noise band uses MAD)
        spread = max(samples) - min(samples)
        assert mad(samples + [outlier]) <= spread + 1e-8

    @given(sample_lists)
    def test_reduce_samples_is_median_and_mad(self, samples):
        median, noise = reduce_samples(samples)
        assert noise == mad(samples)
        assert sum(1 for s in samples if s <= median) * 2 >= len(samples)
        assert sum(1 for s in samples if s >= median) * 2 >= len(samples)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            mad([])
        with pytest.raises(ConfigurationError):
            reduce_samples([])

    @given(sample_lists)
    def test_measurement_properties_match_reduction(self, samples):
        m = Measurement("x", tuple(samples), {})
        median, noise = reduce_samples(samples)
        assert m.median_ms == median
        assert m.mad_ms == noise


# ---------------------------------------------------------------------------
# threshold algebra
# ---------------------------------------------------------------------------
class TestThresholdAlgebra:
    @given(positive_ms, noise_ms, noise_ms, threshold_values)
    def test_allowed_is_max_of_three_slacks(
        self, base_median, base_mad, cur_mad, thresholds
    ):
        allowed = allowed_regression_ms(
            base_median, base_mad, cur_mad, thresholds
        )
        components = (
            thresholds.abs_floor_ms,
            thresholds.rel_tolerance * base_median,
            thresholds.noise_mult * (base_mad + cur_mad),
        )
        assert all(allowed >= c for c in components)
        assert allowed in components

    @given(
        positive_ms, positive_ms, noise_ms, noise_ms, threshold_values
    )
    def test_monotone_in_baseline_median(
        self, median_a, median_b, base_mad, cur_mad, thresholds
    ):
        lo, hi = sorted((median_a, median_b))
        assert allowed_regression_ms(
            lo, base_mad, cur_mad, thresholds
        ) <= allowed_regression_ms(hi, base_mad, cur_mad, thresholds)

    @given(positive_ms, noise_ms, noise_ms, noise_ms, threshold_values)
    def test_monotone_in_noise(
        self, base_median, base_mad, mad_a, mad_b, thresholds
    ):
        lo, hi = sorted((mad_a, mad_b))
        assert allowed_regression_ms(
            base_median, base_mad, lo, thresholds
        ) <= allowed_regression_ms(base_median, base_mad, hi, thresholds)

    @pytest.mark.parametrize(
        "field", ["rel_tolerance", "noise_mult", "abs_floor_ms"]
    )
    def test_negative_thresholds_rejected(self, field):
        with pytest.raises(ConfigurationError):
            Thresholds(**{field: -0.1})

    def test_zero_thresholds_allowed(self):
        thresholds = Thresholds(
            rel_tolerance=0, noise_mult=0, abs_floor_ms=0
        )
        assert (
            allowed_regression_ms(10.0, 1.0, 1.0, thresholds) == 0.0
        )


# ---------------------------------------------------------------------------
# compare_measurement
# ---------------------------------------------------------------------------
def _entry(median, noise=0.0, counters=None):
    return BaselineEntry(
        median_ms=median,
        mad_ms=noise,
        repeats=3,
        counters=dict(counters or {}),
    )


def _measurement(samples, counters=None, name="demo.bench"):
    return Measurement(name, tuple(samples), dict(counters or {}))


class TestCompareMeasurement:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e3),
            min_size=3,
            max_size=9,
        ),
        positive_ms,
        noise_ms,
        st.floats(min_value=0.1, max_value=10),
    )
    def test_calibration_scale_invariance(
        self, samples, base_median, base_mad, factor
    ):
        """Scaling every duration and the calibration by the same
        factor cannot change the verdict."""
        thresholds = Thresholds()
        baseline = _entry(base_median, base_mad)
        plain = _measurement(samples)
        scaled = _measurement([s * factor for s in samples])
        allowed = allowed_regression_ms(
            base_median, base_mad, plain.mad_ms, thresholds
        )
        delta = plain.median_ms - base_median
        # keep clear of the verdict boundary: float rounding of the
        # scaled comparison must not be able to flip it
        assume(abs(abs(delta) - allowed) > 1e-6 * max(1.0, allowed))
        verdict_plain = compare_measurement(
            "s", baseline, plain, 1.0, thresholds
        )
        verdict_scaled = compare_measurement(
            "s", baseline, scaled, factor, thresholds
        )
        assert verdict_plain.status == verdict_scaled.status

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e3),
            min_size=1,
            max_size=9,
        ),
        positive_ms,
        noise_ms,
    )
    def test_verdict_trichotomy_with_equal_counters(
        self, samples, base_median, base_mad
    ):
        thresholds = Thresholds()
        result = compare_measurement(
            "s",
            _entry(base_median, base_mad),
            _measurement(samples),
            1.0,
            thresholds,
        )
        assert result.status in ("ok", "improved", "regression-time")
        allowed = result.allowed_delta_ms
        delta = result.delta_ms
        if result.status == "regression-time":
            assert delta > allowed
        elif result.status == "improved":
            assert -delta > allowed
        else:
            assert abs(delta) <= allowed

    def test_counter_drift_beats_any_wall_clock_slack(self):
        # identical (even faster) timings still fail on a counter drift
        result = compare_measurement(
            "s",
            _entry(100.0, 1.0, {"budget.rows": 10}),
            _measurement([1.0, 1.0, 1.0], {"budget.rows": 11}),
            1.0,
            Thresholds(),
        )
        assert result.status == "regression-counters"
        assert result.failed
        assert result.counter_mismatches[0]["counter"] == "budget.rows"

    def test_non_positive_calibration_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_measurement(
                "s",
                _entry(1.0),
                _measurement([1.0]),
                0.0,
                Thresholds(),
            )

    def test_missing_baseline_detail_not_failed_status_names(self):
        result = CheckResult(suite="s", name="x", status="ok")
        assert not result.failed
        for status in (
            "regression-time",
            "regression-counters",
            "missing-baseline",
        ):
            assert CheckResult(
                suite="s", name="x", status=status
            ).failed


class TestDiffCounters:
    @given(counter_dicts)
    def test_equal_counters_match(self, counters):
        assert diff_counters(counters, dict(counters)) == []

    @given(counter_dicts, counter_names, st.integers(1, 100))
    def test_single_perturbation_detected(self, counters, name, bump):
        current = dict(counters)
        current[name] = counters.get(name, 0) + bump
        mismatches = diff_counters(counters, current)
        assert [m["counter"] for m in mismatches] == [name]
        assert mismatches[0]["current"] == current[name]

    @given(counter_dicts, counter_names, st.integers(0, 100))
    def test_one_sided_counter_is_a_mismatch(
        self, counters, name, value
    ):
        counters = {k: v for k, v in counters.items() if k != name}
        with_extra = dict(counters)
        with_extra[name] = value
        # new instrumentation on the current side
        assert any(
            m["counter"] == name and m["baseline"] is None
            for m in diff_counters(counters, with_extra)
        )
        # lost instrumentation on the baseline side
        assert any(
            m["counter"] == name and m["current"] is None
            for m in diff_counters(with_extra, counters)
        )


# ---------------------------------------------------------------------------
# baseline files
# ---------------------------------------------------------------------------
baseline_entries = st.dictionaries(
    st.text(alphabet="ABCGImovrd0123456789._", min_size=1, max_size=20),
    st.builds(
        BaselineEntry,
        median_ms=st.floats(min_value=1e-3, max_value=1e4),
        mad_ms=st.floats(min_value=0, max_value=100),
        repeats=st.integers(min_value=1, max_value=20),
        counters=counter_dicts,
    ),
    max_size=5,
)


class TestBaselineFiles:
    @given(
        entries=baseline_entries,
        calibration=st.floats(min_value=0.1, max_value=100),
    )
    def test_write_read_round_trip(
        self, tmp_path_factory, entries, calibration
    ):
        directory = tmp_path_factory.mktemp("baselines")
        written = SuiteBaseline(
            suite="demo", calibration_ms=calibration, entries=entries
        )
        write_suite_baseline(written, directory)
        loaded = read_suite_baseline("demo", directory)
        assert loaded.suite == "demo"
        assert loaded.calibration_ms == calibration
        assert loaded.entries == entries

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no committed"):
            read_suite_baseline("demo", tmp_path)

    @given(data=st.data())
    def test_torn_file_rejected(self, data, tmp_path_factory):
        directory = tmp_path_factory.mktemp("baselines")
        write_suite_baseline(
            SuiteBaseline(
                suite="demo",
                calibration_ms=10.0,
                entries={"a.ned": _entry(1.0, counters={"x": 1})},
            ),
            directory,
        )
        path = baseline_path("demo", directory)
        text = path.read_text(encoding="utf-8")
        # any cut before the closing brace tears the document (cutting
        # only the trailing newline would still be valid JSON)
        cut = data.draw(
            st.integers(min_value=1, max_value=len(text) - 2)
        )
        path.write_text(text[:cut], encoding="utf-8")
        with pytest.raises(ConfigurationError, match="torn|not a"):
            read_suite_baseline("demo", directory)

    def _write_document(self, tmp_path, mutate):
        write_suite_baseline(
            SuiteBaseline(
                suite="demo", calibration_ms=10.0, entries={}
            ),
            tmp_path,
        )
        path = baseline_path("demo", tmp_path)
        document = json.loads(path.read_text(encoding="utf-8"))
        mutate(document)
        path.write_text(json.dumps(document), encoding="utf-8")

    def test_stale_version_rejected(self, tmp_path):
        self._write_document(
            tmp_path,
            lambda d: d.update(version=BASELINE_FORMAT_VERSION + 1),
        )
        with pytest.raises(ConfigurationError, match="stale"):
            read_suite_baseline("demo", tmp_path)

    def test_foreign_format_rejected(self, tmp_path):
        self._write_document(
            tmp_path, lambda d: d.update(format="something.else")
        )
        with pytest.raises(ConfigurationError, match="not a"):
            read_suite_baseline("demo", tmp_path)

    def test_suite_mismatch_rejected(self, tmp_path):
        self._write_document(
            tmp_path, lambda d: d.update(suite="other")
        )
        with pytest.raises(ConfigurationError, match="names suite"):
            read_suite_baseline("demo", tmp_path)

    def test_bad_calibration_rejected(self, tmp_path):
        self._write_document(
            tmp_path, lambda d: d.update(calibration_ms=0)
        )
        with pytest.raises(ConfigurationError, match="positive"):
            read_suite_baseline("demo", tmp_path)

    def test_malformed_entry_rejected(self, tmp_path):
        self._write_document(
            tmp_path,
            lambda d: d["benchmarks"].update(
                {"a.ned": {"median_ms": 1.0}}
            ),
        )
        with pytest.raises(ConfigurationError, match="missing"):
            read_suite_baseline("demo", tmp_path)

    def test_update_leaves_no_temp_files(self, tmp_path):
        write_suite_baseline(
            SuiteBaseline(
                suite="demo", calibration_ms=10.0, entries={}
            ),
            tmp_path,
        )
        assert [p.name for p in tmp_path.iterdir()] == ["demo.json"]


# ---------------------------------------------------------------------------
# trajectory document
# ---------------------------------------------------------------------------
class TestTrajectory:
    def test_missing_file_reads_empty(self, tmp_path):
        document = read_trajectory(tmp_path / "BENCH_trajectory.json")
        assert document["entries"] == []

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        append_trajectory_entry(path, {"status": "ok"})
        append_trajectory_entry(path, {"status": "regression"})
        document = read_trajectory(path)
        assert [e["status"] for e in document["entries"]] == [
            "ok",
            "regression",
        ]

    def test_torn_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text('{"format": "repro.bench.trajec')
        with pytest.raises(ConfigurationError, match="torn"):
            read_trajectory(path)

    def test_foreign_document_rejected(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text(json.dumps({"format": "other", "entries": []}))
        with pytest.raises(ConfigurationError, match="not a"):
            read_trajectory(path)

    def test_render_empty_and_populated(self, tmp_path):
        assert "empty" in render_trajectory(
            {"entries": []}
        )
        path = tmp_path / "BENCH_trajectory.json"
        append_trajectory_entry(
            path,
            {
                "status": "ok",
                "git_sha": "abc1234",
                "label": "PR6",
                "benchmarks": {"Crime5.ned": {}},
                "regressions": [],
            },
        )
        rendered = render_trajectory(read_trajectory(path))
        assert "abc1234" in rendered
        assert "PR6" in rendered

    def test_run_report_on_corrupt_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text("{nope")
        exit_code, document = run_report(path)
        assert exit_code == 2
        assert document["status"] == "error"


# ---------------------------------------------------------------------------
# spec selection & calibration
# ---------------------------------------------------------------------------
class TestSelection:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown suite"):
            select_specs(suites=["nope"])

    def test_unmatched_benchmark_filter_rejected(self):
        with pytest.raises(ConfigurationError, match="matched nothing"):
            select_specs(
                suites=["scaling"], benchmarks=["DoesNotExist.ned"]
            )

    def test_qualified_and_bare_names_select(self):
        bare = select_specs(
            suites=["usecases"], benchmarks=["Crime5.ned"]
        )
        qualified = select_specs(
            suites=["usecases"], benchmarks=["usecases:Crime5.ned"]
        )
        assert [s.name for s in bare["usecases"]] == ["Crime5.ned"]
        assert [s.name for s in qualified["usecases"]] == ["Crime5.ned"]

    def test_calibration_is_positive_and_stable(self):
        first, second = calibrate(repeats=3), calibrate(repeats=3)
        assert first > 0 and second > 0
        # same interpreter, back to back: within 20x of each other is a
        # deliberately loose sanity band, not a perf assertion
        assert 0.05 < first / second < 20


# ---------------------------------------------------------------------------
# end-to-end: the injected-regression proof
# ---------------------------------------------------------------------------
GATE_KW = dict(
    suites=["usecases"],
    benchmarks=["Crime5.ned"],
    repeats=3,
    warmup=1,
)


@pytest.fixture(scope="module")
def crime5_baselines(tmp_path_factory):
    """Committed-style baselines for one cheap benchmark."""
    directory = tmp_path_factory.mktemp("baselines")
    report = run_update(baseline_directory=directory, **GATE_KW)
    assert report.status == "ok"
    assert report.exit_code == 0
    return directory


class TestGateEndToEnd:
    def test_clean_tree_passes_three_consecutive_checks(
        self, crime5_baselines, tmp_path
    ):
        trajectory = tmp_path / "BENCH_trajectory.json"
        for run in range(1, 4):
            report = run_check(
                baseline_directory=crime5_baselines,
                trajectory=trajectory,
                trajectory_label=f"run-{run}",
                **GATE_KW,
            )
            assert report.status == "ok", report.render()
            assert report.exit_code == 0
            entries = read_trajectory(trajectory)["entries"]
            # exactly one well-formed entry per check run
            assert len(entries) == run
            latest = entries[-1]
            assert latest["status"] == "ok"
            assert latest["label"] == f"run-{run}"
            assert latest["repeats"] == GATE_KW["repeats"]
            assert latest["calibration_ms"] > 0
            record = latest["benchmarks"]["Crime5.ned"]
            assert record["suite"] == "usecases"
            assert record["median_ms"] > 0
            assert record["counters"]["budget.rows"] > 0

    def test_trajectory_entries_stamp_git_sha(
        self, crime5_baselines, tmp_path, monkeypatch
    ):
        """Every appended entry carries the current git SHA -- and
        outside a repository the stamp degrades to the literal
        ``"unknown"``, never ``None``, so trajectory consumers can
        rely on the field being a string."""
        import subprocess

        from repro.bench import gate as gate_module

        trajectory = tmp_path / "BENCH_trajectory.json"
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=trajectory,
            **GATE_KW,
        )
        assert report.status == "ok", report.render()
        stamped = read_trajectory(trajectory)["entries"][-1]["git_sha"]
        assert isinstance(stamped, str) and stamped
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
        )
        if probe.returncode == 0:
            assert stamped == probe.stdout.strip()

        # no repository (best-effort probe fails): literal "unknown"
        monkeypatch.setattr(gate_module, "_git_sha", lambda: None)
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=trajectory,
            **GATE_KW,
        )
        assert report.status == "ok", report.render()
        entries = read_trajectory(trajectory)["entries"]
        assert entries[-1]["git_sha"] == "unknown"

    def test_injected_counter_regression_fails_then_passes(
        self, crime5_baselines, tmp_path, monkeypatch
    ):
        original = CompatibleFinder.find

        def padded(self, tc):
            context = current_context()
            if context is not None:
                context.tick_comparisons(500)
            return original(self, tc)

        monkeypatch.setattr(CompatibleFinder, "find", padded)
        trajectory = tmp_path / "BENCH_trajectory.json"
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=trajectory,
            **GATE_KW,
        )
        assert report.status == "regression"
        assert report.exit_code == 1
        (result,) = report.results
        assert result.status == "regression-counters"
        assert any(
            m["counter"] == "budget.comparisons"
            for m in result.counter_mismatches
        )
        # the machine-readable report names the offending benchmark
        payload = report.to_dict()
        assert payload["regressions"] == ["Crime5.ned"]
        assert payload["exit_code"] == 1
        # the regression is recorded in the trajectory too
        entry = read_trajectory(trajectory)["entries"][-1]
        assert entry["status"] == "regression"
        assert entry["regressions"] == ["Crime5.ned"]

        # reverting the fault makes the same check pass again
        monkeypatch.undo()
        clean = run_check(
            baseline_directory=crime5_baselines,
            trajectory=trajectory,
            **GATE_KW,
        )
        assert clean.status == "ok", clean.render()
        assert clean.exit_code == 0

    def test_injected_slowdown_fails_wall_clock_gate(
        self, crime5_baselines, tmp_path, monkeypatch
    ):
        original = NedExplain.explain

        def slowed(self, *args, **kwargs):
            time.sleep(0.05)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(NedExplain, "explain", slowed)
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=tmp_path / "BENCH_trajectory.json",
            **GATE_KW,
        )
        assert report.exit_code == 1
        (result,) = report.results
        # the sleep changes no counters, so this is precisely the
        # noise-banded wall-clock verdict
        assert result.status == "regression-time"
        assert result.counter_mismatches == ()
        assert result.delta_ms > result.allowed_delta_ms

        monkeypatch.undo()
        clean = run_check(
            baseline_directory=crime5_baselines,
            trajectory=tmp_path / "BENCH_trajectory.json",
            **GATE_KW,
        )
        assert clean.exit_code == 0, clean.render()

    def test_missing_baseline_entry_is_a_regression(
        self, crime5_baselines, tmp_path
    ):
        report = run_check(
            suites=["usecases"],
            benchmarks=["Crime6.ned"],
            repeats=2,
            warmup=0,
            baseline_directory=crime5_baselines,
            trajectory=tmp_path / "BENCH_trajectory.json",
        )
        assert report.exit_code == 1
        (result,) = report.results
        assert result.status == "missing-baseline"
        assert "update" in result.detail

    def test_missing_baseline_file_is_an_error(self, tmp_path):
        report = run_check(
            baseline_directory=tmp_path / "empty",
            trajectory=tmp_path / "BENCH_trajectory.json",
            **GATE_KW,
        )
        assert report.status == "error"
        assert report.exit_code == 2
        assert any("no committed" in e for e in report.errors)
        # an error run measures nothing and appends nothing
        assert not (tmp_path / "BENCH_trajectory.json").exists()

    def test_stale_baseline_version_is_an_error(
        self, crime5_baselines, tmp_path
    ):
        stale_dir = tmp_path / "stale"
        stale_dir.mkdir()
        source = baseline_path("usecases", crime5_baselines)
        document = json.loads(source.read_text(encoding="utf-8"))
        document["version"] = BASELINE_FORMAT_VERSION + 1
        (stale_dir / "usecases.json").write_text(json.dumps(document))
        report = run_check(
            baseline_directory=stale_dir,
            trajectory=tmp_path / "BENCH_trajectory.json",
            **GATE_KW,
        )
        assert report.exit_code == 2
        assert any("stale" in e for e in report.errors)

    def test_corrupt_trajectory_fails_fast(
        self, crime5_baselines, tmp_path
    ):
        trajectory = tmp_path / "BENCH_trajectory.json"
        trajectory.write_text("{torn")
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=trajectory,
            **GATE_KW,
        )
        assert report.exit_code == 2
        assert any("torn" in e for e in report.errors)
        # the torn file is left untouched for forensics
        assert trajectory.read_text() == "{torn"

    def test_bad_filters_and_params_are_errors(self, tmp_path):
        for kwargs in (
            dict(suites=["nope"]),
            dict(suites=["scaling"], benchmarks=["Missing.ned"]),
            dict(suites=["scaling"], repeats=0),
        ):
            report = run_check(
                baseline_directory=tmp_path,
                trajectory=tmp_path / "t.json",
                **{**dict(repeats=2, warmup=0), **kwargs},
            )
            assert report.exit_code == 2, kwargs

    def test_no_trajectory_flag_writes_nothing(
        self, crime5_baselines, tmp_path
    ):
        trajectory = tmp_path / "BENCH_trajectory.json"
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=trajectory,
            append_to_trajectory=False,
            **GATE_KW,
        )
        assert report.exit_code == 0
        assert not trajectory.exists()

    def test_targeted_update_preserves_other_entries(self, tmp_path):
        run_update(baseline_directory=tmp_path, **GATE_KW)
        before = read_suite_baseline("usecases", tmp_path)
        report = run_update(
            suites=["usecases"],
            benchmarks=["Crime6.ned"],
            repeats=2,
            warmup=0,
            baseline_directory=tmp_path,
        )
        assert report.exit_code == 0
        after = read_suite_baseline("usecases", tmp_path)
        assert set(after.entries) == {"Crime5.ned", "Crime6.ned"}
        # the untouched entry keeps its counters; its wall-clock is
        # rescaled to the new calibration so the file stays consistent
        assert (
            after.entries["Crime5.ned"].counters
            == before.entries["Crime5.ned"].counters
        )
        rescale = after.calibration_ms / before.calibration_ms
        assert math.isclose(
            after.entries["Crime5.ned"].median_ms,
            before.entries["Crime5.ned"].median_ms * rescale,
            rel_tol=1e-9,
        )

    def test_render_names_benchmark_and_status(
        self, crime5_baselines, tmp_path
    ):
        report = run_check(
            baseline_directory=crime5_baselines,
            trajectory=tmp_path / "t.json",
            **GATE_KW,
        )
        rendered = report.render()
        assert "Crime5.ned" in rendered
        assert "perf gate check" in rendered


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_update_then_check_json(self, tmp_path, capsys):
        base_args = [
            "--suite",
            "usecases",
            "--benchmark",
            "Crime5.ned",
            "--repeats",
            "2",
            "--warmup",
            "0",
            "--baseline-dir",
            str(tmp_path / "baselines"),
        ]
        assert gate_main(["update", *base_args]) == 0
        capsys.readouterr()
        trajectory = tmp_path / "BENCH_trajectory.json"
        report_file = tmp_path / "GATE_report.json"
        code = gate_main(
            [
                "check",
                *base_args,
                "--trajectory",
                str(trajectory),
                "--report",
                str(report_file),
                "--label",
                "cli-test",
                "--json",
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["status"] == "ok"
        assert printed["exit_code"] == 0
        assert printed["results"][0]["name"] == "Crime5.ned"
        # --report wrote the same machine-readable document
        written = json.loads(report_file.read_text(encoding="utf-8"))
        assert written["status"] == "ok"
        # the report subcommand renders the recorded entry
        code = gate_main(
            ["report", "--trajectory", str(trajectory)]
        )
        assert code == 0
        assert "cli-test" in capsys.readouterr().out

    def test_check_without_baselines_exits_2(self, tmp_path, capsys):
        code = gate_main(
            [
                "check",
                "--suite",
                "usecases",
                "--benchmark",
                "Crime5.ned",
                "--repeats",
                "1",
                "--baseline-dir",
                str(tmp_path),
                "--no-trajectory",
            ]
        )
        assert code == 2
        assert "no committed" in capsys.readouterr().out

    def test_negative_threshold_exits_2(self, capsys):
        code = gate_main(
            ["check", "--rel-tolerance", "-1", "--no-trajectory"]
        )
        assert code == 2

    def test_report_on_missing_trajectory(self, tmp_path, capsys):
        code = gate_main(
            ["report", "--trajectory", str(tmp_path / "none.json")]
        )
        assert code == 0
        assert "empty trajectory" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# full sweep (excluded from tier-1; the CI perf-gate job runs it)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_full_sweep_update_then_check(tmp_path):
    """Every suite round-trips through update -> check clean."""
    directory = tmp_path / "baselines"
    update = run_update(
        repeats=2, warmup=0, baseline_directory=directory
    )
    assert update.exit_code == 0
    check = run_check(
        repeats=2,
        warmup=0,
        baseline_directory=directory,
        trajectory=tmp_path / "BENCH_trajectory.json",
    )
    assert check.exit_code == 0, check.render()
    suites = {result.suite for result in check.results}
    assert suites == {"usecases", "whynot", "batch", "scaling"}
