"""Tests for the Why-Not baseline -- including that it fails exactly
the way the paper says it does (Sec. 1 and Sec. 4.2)."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.baseline import (
    WhyNotBaseline,
    attribute_constraints,
    find_unpicked_items,
    whynot,
)
from repro.core import parse_predicate
from repro.workloads import get_canonical, get_database


# ---------------------------------------------------------------------------
# Unpicked item selection
# ---------------------------------------------------------------------------
class TestUnpickedItems:
    def test_matches_by_unqualified_name_in_all_aliases(self):
        """The self-join sloppiness: C2.type items also come from C1."""
        db = get_database("crime")
        canonical = get_canonical("Q3")
        instance = db.input_instance(canonical.aliases)
        predicate = parse_predicate("(C2.type: Kidnapping)")
        items = find_unpicked_items(predicate, instance, canonical.root)
        aliases = {item.alias for item in items}
        assert aliases == {"C1", "C2"}

    def test_constraints_are_independent_per_attribute(self):
        db = get_database("crime")
        canonical = get_canonical("Q1")
        instance = db.input_instance(canonical.aliases)
        predicate = parse_predicate(
            "(Person.name: Hank, Crime.type: 'Car theft')"
        )
        constraints = attribute_constraints(predicate, canonical.root)
        assert len(constraints) == 2
        items = find_unpicked_items(predicate, instance, canonical.root)
        # Hank from Person; every car theft from Crime
        assert any(item.alias == "Person" for item in items)
        assert any(item.alias == "Crime" for item in items)

    def test_renamed_attribute_expands_through_origins(self):
        """Gov4's sponsorId reaches ES.sponsor and SPO.id items."""
        db = get_database("gov")
        canonical = get_canonical("Q7")
        instance = db.input_instance(canonical.aliases)
        predicate = parse_predicate("(sponsorId: 467)")
        items = find_unpicked_items(predicate, instance, canonical.root)
        aliases = {item.alias for item in items}
        assert "ES" in aliases and "SPO" in aliases

    def test_variable_constraints_use_condition(self):
        db = get_database("gov")
        canonical = get_canonical("Q7")
        instance = db.input_instance(canonical.aliases)
        predicate = parse_predicate(
            "((SPO.sponsorln: Lugar, E.camount: $x), $x >= 1000)"
        )
        items = find_unpicked_items(predicate, instance, canonical.root)
        amounts = [
            item.tuple["E.camount"]
            for item in items
            if item.alias == "E"
        ]
        assert amounts and all(a >= 1000 for a in amounts)

    def test_witness_name_collides_with_person_name(self):
        """Unqualified matching also hits other relations exposing the
        same column name -- Person.name items may come from Witness."""
        db = get_database("crime")
        canonical = get_canonical("Q1")
        instance = db.input_instance(canonical.aliases)
        predicate = parse_predicate("(Person.name: Susan)")
        items = find_unpicked_items(predicate, instance, canonical.root)
        assert {item.alias for item in items} == {"Witness"}


# ---------------------------------------------------------------------------
# Tracing and frontier
# ---------------------------------------------------------------------------
class TestWhyNotBaseline:
    def test_aggregation_unsupported(self):
        db = get_database("crime")
        canonical = get_canonical("Q8")
        with pytest.raises(UnsupportedQueryError):
            WhyNotBaseline(canonical, database=db)

    def test_requires_exactly_one_source(self):
        canonical = get_canonical("Q1")
        with pytest.raises(UnsupportedQueryError):
            WhyNotBaseline(canonical)

    def test_survivor_silences_constraint(self):
        """Crime8: a surviving P1-side Audrey item makes the algorithm
        believe the answer is not missing."""
        db = get_database("crime")
        canonical = get_canonical("Q4")
        report = whynot(canonical, "(P2.name: Audrey)", database=db)
        assert report.is_empty()
        assert "P2.name" in report.satisfied_constraints

    def test_empty_intermediate_blame_redirected(self):
        """Crime5: blame lands on the empty selection, not the join."""
        db = get_database("crime")
        canonical = get_canonical("Q2")
        report = whynot(canonical, "(Person.name: Hank)", database=db)
        (answer,) = report.answers
        assert answer.op == "sigma"

    def test_self_join_false_blame(self):
        """Crime6: the C1-side items die at the Aiding selection, which
        the frontier (deepest blame) then reports -- the wrong answer
        the paper criticises."""
        db = get_database("crime")
        canonical = get_canonical("Q3")
        report = whynot(canonical, "(C2.type: Kidnapping)", database=db)
        (answer,) = report.answers
        assert answer.op == "sigma"

    def test_traces_expose_item_level_story(self):
        db = get_database("crime")
        canonical = get_canonical("Q3")
        report = whynot(canonical, "(C2.type: Kidnapping)", database=db)
        blamed_ops = {
            t.blamed.op for t in report.traces if t.blamed is not None
        }
        # items died both at the selection (C1 side) and the join (C2)
        assert blamed_ops == {"sigma", "join"}

    def test_summary_renders(self):
        db = get_database("crime")
        canonical = get_canonical("Q2")
        report = whynot(canonical, "(Person.name: Hank)", database=db)
        assert "answers:" in report.summary()
        report2 = whynot(canonical, "(Person.name: Nobody)", database=db)
        assert "(none)" in report2.summary()

    def test_phase_times(self):
        db = get_database("crime")
        canonical = get_canonical("Q1")
        report = whynot(
            canonical, "(Person.name: Roger)", database=db
        )
        assert set(report.phase_times_ms) == {"UnpickedFinder", "Tracing"}
        assert report.total_time_ms > 0

    def test_union_supported(self):
        db = get_database("gov")
        canonical = get_canonical("Q12")
        report = whynot(canonical, "(name: JOHN)", database=db)
        assert not report.is_empty()
