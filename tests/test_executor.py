"""Unit tests for the supervised parallel batch executor.

:class:`~repro.robustness.ParallelExecutor` is exercised directly with
synthetic resolve functions (ordering, backpressure, shedding,
cancellation, context propagation, tracer merging) and through
``NedExplain.explain_each(workers=N)`` for the engine-level guarantees
(thread-local state, shed/cancelled outcome shapes).  The heavyweight
determinism differentials live in test_chaos.py; the CLI-level drain
and kill/resume proofs in test_journal_resume.py.
"""

from __future__ import annotations

import contextvars
import threading
import time

import pytest

from repro.core import NedExplain, canonicalize
from repro.errors import (
    CancelledError,
    ConfigurationError,
    LoadShedError,
    ReproError,
)
from repro.obs import ManualClock, Tracer, tracing, use_clock
from repro.obs.clock import current_clock
from repro.obs.trace import metric_counter
from repro.relational import EvaluationCache
from repro.robustness import CancellationToken, ParallelExecutor
from repro.workloads.generator import chain_database, chain_query

QUESTIONS = ["(R0.label: needle)", "(R0.label: r0v1)", "(R2.label: r2v3)"]


def _engine():
    db = chain_database(3, rows_per_relation=12)
    canonical = canonicalize(chain_query(3), db.schema)
    return NedExplain(canonical, database=db, cache=EvaluationCache())


def _cancelled(index, item, reason):
    return ("cancelled", index, reason)


def _shed(index, item):
    return ("shed", index)


# ---------------------------------------------------------------------------
# CancellationToken
# ---------------------------------------------------------------------------
class TestCancellationToken:
    def test_one_shot_first_reason_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.reason is None
        assert token.cancel("first")
        assert not token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_is_thread_safe_exactly_one_winner(self):
        token = CancellationToken()
        wins = []
        barrier = threading.Barrier(8)

        def contender(n):
            barrier.wait()
            if token.cancel(f"t{n}"):
                wins.append(n)

        threads = [
            threading.Thread(target=contender, args=(n,))
            for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert token.reason == f"t{wins[0]}"


# ---------------------------------------------------------------------------
# Construction and call validation
# ---------------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -2},
            {"queue_size": 0},
            {"shed_after": -1},
            {"batch_deadline_s": 0.0},
            {"batch_deadline_s": -5.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(**kwargs)

    def test_shed_after_requires_on_shed(self):
        executor = ParallelExecutor(shed_after=1)
        with pytest.raises(ConfigurationError):
            executor.run([1, 2], lambda i, x: x, on_cancelled=_cancelled)

    def test_on_cancelled_is_required(self):
        executor = ParallelExecutor()
        with pytest.raises(ConfigurationError):
            executor.run([1], lambda i, x: x)

    def test_default_queue_size_tracks_workers(self):
        assert ParallelExecutor(workers=4).queue_size == 8
        assert ParallelExecutor(workers=1).queue_size == 2
        assert ParallelExecutor(workers=4, queue_size=3).queue_size == 3


# ---------------------------------------------------------------------------
# Ordering and equivalence of the inline / parallel paths
# ---------------------------------------------------------------------------
class TestOrdering:
    def test_results_in_submission_order_despite_completion_order(self):
        # earlier items sleep longer, so completion order is reversed
        def resolve(index, item):
            time.sleep(0.002 * (20 - index))
            return item * 10

        items = list(range(20))
        executor = ParallelExecutor(workers=4)
        results = executor.run(
            items, resolve, on_cancelled=_cancelled
        )
        assert results == [item * 10 for item in items]

    def test_inline_and_parallel_agree(self):
        items = list(range(12))
        resolve = lambda index, item: (index, item * item)  # noqa: E731
        inline = ParallelExecutor(workers=1).run(
            items, resolve, on_cancelled=_cancelled
        )
        parallel = ParallelExecutor(workers=4).run(
            items, resolve, on_cancelled=_cancelled
        )
        assert inline == parallel

    def test_record_sees_every_resolved_item_exactly_once(self):
        recorded = []
        lock = threading.Lock()

        def record(index, item, result):
            with lock:
                recorded.append((index, item, result))

        executor = ParallelExecutor(workers=4)
        executor.run(
            list(range(10)),
            lambda i, x: x + 1,
            record=record,
            on_cancelled=_cancelled,
        )
        # completion order is free, the *set* is not
        assert sorted(recorded) == [(i, i, i + 1) for i in range(10)]

    def test_more_workers_than_items(self):
        executor = ParallelExecutor(workers=16)
        assert executor.run(
            [1, 2], lambda i, x: -x, on_cancelled=_cancelled
        ) == [-1, -2]

    def test_empty_batch(self):
        assert ParallelExecutor(workers=4).run(
            [], lambda i, x: x, on_cancelled=_cancelled
        ) == []


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def test_quota_sheds_the_tail_deterministically(self):
        executor = ParallelExecutor(workers=4, shed_after=3)
        results = executor.run(
            list(range(6)),
            lambda i, x: ("ok", x),
            on_shed=_shed,
            on_cancelled=_cancelled,
        )
        assert results[:3] == [("ok", 0), ("ok", 1), ("ok", 2)]
        assert results[3:] == [("shed", 3), ("shed", 4), ("shed", 5)]

    def test_shed_after_zero_sheds_everything(self):
        results = ParallelExecutor(workers=2, shed_after=0).run(
            [1, 2],
            lambda i, x: x,
            on_shed=_shed,
            on_cancelled=_cancelled,
        )
        assert results == [("shed", 0), ("shed", 1)]

    def test_replayed_items_do_not_consume_the_quota(self):
        replay = lambda index, item: (  # noqa: E731
            ("replayed", index) if index == 0 else None
        )
        results = ParallelExecutor(workers=2, shed_after=1).run(
            [10, 11, 12],
            lambda i, x: ("ok", x),
            replay=replay,
            on_shed=_shed,
            on_cancelled=_cancelled,
        )
        assert results == [("replayed", 0), ("ok", 11), ("shed", 2)]


# ---------------------------------------------------------------------------
# Cancellation, drain, batch deadline
# ---------------------------------------------------------------------------
class TestCancellation:
    def test_precancelled_token_cancels_everything(self):
        token = CancellationToken()
        token.cancel("operator says stop")
        ran = []
        results = ParallelExecutor(workers=4, cancel=token).run(
            [1, 2, 3],
            lambda i, x: ran.append(x),
            on_cancelled=_cancelled,
        )
        assert ran == []
        assert results == [
            ("cancelled", i, "operator says stop") for i in range(3)
        ]

    def test_drain_finishes_in_flight_and_cancels_the_rest(self):
        token = CancellationToken()
        started = threading.Event()
        release = threading.Event()
        recorded = []
        lock = threading.Lock()

        def resolve(index, item):
            started.set()
            release.wait(timeout=30)
            return ("ok", index)

        def record(index, item, result):
            with lock:
                recorded.append(index)

        def trigger():
            started.wait(timeout=30)
            token.cancel("drain now")
            release.set()

        trigger_thread = threading.Thread(target=trigger)
        trigger_thread.start()
        # two workers, tiny queue: at most a handful of items are in
        # flight or queued when the drain begins; the tail is not
        results = ParallelExecutor(
            workers=2, queue_size=1, cancel=token
        ).run(list(range(8)), resolve, record=record,
              on_cancelled=_cancelled)
        trigger_thread.join()

        finished = [r for r in results if r[0] == "ok"]
        cancelled = [r for r in results if r[0] == "cancelled"]
        assert finished, "the in-flight work did not complete"
        assert cancelled, "the drain cancelled nothing"
        assert len(finished) + len(cancelled) == 8
        for r in finished:
            assert r[1] in recorded  # completed work is journal-able
        for r in cancelled:
            assert r[2] == "drain now"
            assert r[1] not in recorded  # never journalled

    def test_batch_deadline_cancels_unstarted_items(self):
        clock = ManualClock()
        with use_clock(clock):
            executor = ParallelExecutor(workers=1, batch_deadline_s=10.0)

            def resolve(index, item):
                clock.advance(6.0)  # two items overrun the deadline
                return ("ok", index)

            results = executor.run(
                list(range(4)), resolve, on_cancelled=_cancelled
            )
        assert results[0] == ("ok", 0)
        assert results[1] == ("ok", 1)
        assert results[2:] == [
            ("cancelled", 2, "batch deadline exceeded"),
            ("cancelled", 3, "batch deadline exceeded"),
        ]

    def test_worker_exception_is_supervised_and_reraised(self):
        def resolve(index, item):
            if index == 3:
                raise RuntimeError("worker blew up")
            return index

        executor = ParallelExecutor(workers=4)
        with pytest.raises(RuntimeError, match="worker blew up"):
            executor.run(
                list(range(8)), resolve, on_cancelled=_cancelled
            )
        # supervision closed admission so the pool wound down
        assert executor.cancel.cancelled


# ---------------------------------------------------------------------------
# Context propagation and observability merging
# ---------------------------------------------------------------------------
_AMBIENT = contextvars.ContextVar("test_executor_ambient", default="unset")


class TestContextPropagation:
    def test_workers_see_the_submitters_contextvars(self):
        token = _AMBIENT.set("batch-7")
        try:
            seen = ParallelExecutor(workers=4).run(
                list(range(8)),
                lambda i, x: (_AMBIENT.get(), threading.current_thread().name),
                on_cancelled=_cancelled,
            )
        finally:
            _AMBIENT.reset(token)
        assert {value for value, _ in seen} == {"batch-7"}
        # and the work really ran off the submitting thread
        assert any(
            name.startswith("repro-executor-") for _, name in seen
        )

    def test_manual_clock_forks_isolate_virtual_time(self):
        clock = ManualClock()
        with use_clock(clock):
            def resolve(index, item):
                worker_clock = current_clock()
                assert worker_clock is not clock  # a private fork
                worker_clock.advance(100.0 + index)
                return worker_clock.monotonic()

            readings = ParallelExecutor(workers=4).run(
                list(range(6)), resolve, on_cancelled=_cancelled
            )
            # each fork advanced independently of the others ...
            assert [r - clock.monotonic() for r in readings] == [
                100.0 + i for i in range(6)
            ]
        # ... and nobody moved the batch clock
        assert clock.monotonic() == 0.0

    def test_worker_tracers_fold_back_into_the_parent(self):
        def resolve(index, item):
            metric_counter("test.work")
            return index

        with tracing(Tracer()) as tracer:
            ParallelExecutor(workers=4).run(
                list(range(10)), resolve, on_cancelled=_cancelled
            )
        assert tracer.metrics.counter("test.work").value == 10
        assert not tracer.open_spans


# ---------------------------------------------------------------------------
# Engine-level integration: explain_each(workers=N)
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_shed_and_cancelled_outcome_shapes(self):
        engine = _engine()
        token = CancellationToken()
        shed = engine.explain_each(
            QUESTIONS, workers=2, shed_after=1
        )
        assert shed[0].ok
        for outcome in shed[1:]:
            assert outcome.degradation_level == "shed"
            assert not outcome.ok
            assert isinstance(outcome.error, LoadShedError)
            assert outcome.failure.error_class == "LoadShedError"
            assert outcome.failure.attempts == 0

        token.cancel("test drain")
        cancelled = engine.explain_each(
            QUESTIONS, workers=2, cancel=token
        )
        for outcome in cancelled:
            assert outcome.degradation_level == "cancelled"
            assert isinstance(outcome.error, CancelledError)
            assert "test drain" in outcome.failure.message

    def test_engine_state_is_thread_local(self):
        engine = _engine()
        outcomes = engine.explain_each(QUESTIONS, workers=4)
        assert all(o.ok for o in outcomes)
        # the batch ran on worker threads; the calling thread's
        # per-thread debug state was never touched
        assert engine.last_tabqs == []

    def test_parallel_errors_stay_contained(self):
        engine = _engine()
        questions = [QUESTIONS[0], "(R0.nope: x)", QUESTIONS[2]]
        outcomes = engine.explain_each(questions, workers=3)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ReproError)
        assert outcomes[1].degradation_level == "failed"

    def test_batch_deadline_caps_question_budgets(self):
        engine = _engine()
        clock = ManualClock()
        with use_clock(clock):
            outcomes = engine.explain_each(
                QUESTIONS, workers=1, batch_deadline_s=5.0
            )
        # nothing advanced the clock, so nothing was cancelled
        assert all(o.ok for o in outcomes)
