"""Property-based tests (hypothesis) for the core invariants.

The central properties checked on randomly generated databases and
queries:

* evaluation soundness: lineage containment, selection/join semantics;
* **Property 2.1** of the paper: at most one picky subquery per
  compatible tuple;
* **completeness** of NedExplain: every direct compatible tuple either
  survives (a valid successor reaches the result) or is blamed;
* agreement between the incremental algorithm (Alg. 1-3) and the
  declarative definitions (Defs. 2.9-2.11);
* early termination never changes answers;
* the condition satisfiability procedure agrees with brute force.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CTuple,
    JoinPair,
    NedExplain,
    NedExplainConfig,
    SPJASpec,
    canonicalize,
    find_compatibles,
    picky_subqueries,
    unrename_ctuple,
)
from repro.relational import (
    And,
    Comparison,
    Const,
    Database,
    EvaluationCache,
    Var,
    attr_cmp,
    evaluate_query,
    is_satisfiable,
    query_fingerprint,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
_VALUES = st.integers(min_value=0, max_value=4)


@st.composite
def small_database(draw):
    """A two-relation database R(a, b), S(b, c) with small domains."""
    db = Database("prop")
    db.create_table("R", ["id", "a", "b"], key="id")
    db.create_table("S", ["id", "b", "c"], key="id")
    n_r = draw(st.integers(min_value=1, max_value=6))
    n_s = draw(st.integers(min_value=0, max_value=6))
    for i in range(n_r):
        db.insert("R", id=i, a=draw(_VALUES), b=draw(_VALUES))
    for i in range(n_s):
        db.insert("S", id=i, b=draw(_VALUES), c=draw(_VALUES))
    return db


@st.composite
def spj_query(draw):
    """A random SPJ query over the R/S schema."""
    from repro.relational import attr_cmp

    selections = []
    if draw(st.booleans()):
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        selections.append(attr_cmp("R.a", op, draw(_VALUES)))
    if draw(st.booleans()):
        op = draw(st.sampled_from(["<", ">", "="]))
        selections.append(attr_cmp("S.c", op, draw(_VALUES)))
    return SPJASpec(
        aliases={"R": "R", "S": "S"},
        joins=[JoinPair("R.b", "S.b")],
        selections=selections,
        projection=("R.a", "S.c"),
    )


@st.composite
def scenario(draw):
    db = draw(small_database())
    spec = draw(spj_query())
    canonical = canonicalize(spec, db.schema)
    target_value = draw(_VALUES)
    tc = CTuple({"R.a": target_value})
    return db, canonical, tc


# ---------------------------------------------------------------------------
# Evaluation invariants
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(scenario())
def test_output_lineage_within_base_tuples(case):
    db, canonical, _tc = case
    base_tids = {t.tid for t in db.instance().all_tuples()}
    result = evaluate_query(canonical.root, db.instance())
    for node in canonical.root.postorder():
        for t in result.output(node):
            assert t.lineage <= base_tids


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_join_outputs_agree_on_join_attribute(case):
    db, canonical, _tc = case
    result = evaluate_query(canonical.root, db.instance())
    from repro.relational import Join

    for node in canonical.root.postorder():
        if isinstance(node, Join) and node.renaming.triples:
            for t in result.output(node):
                # the renamed attribute carries the shared value
                assert node.renaming.triples[0].new in t


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_selection_outputs_satisfy_condition(case):
    db, canonical, _tc = case
    result = evaluate_query(canonical.root, db.instance())
    from repro.relational import Select

    for node in canonical.root.postorder():
        if isinstance(node, Select):
            for t in result.output(node):
                assert node.condition.evaluate(t)


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_result_values_subset_of_join_values(case):
    """Every result pair must come from an actual joined pair."""
    db, canonical, _tc = case
    result = evaluate_query(canonical.root, db.instance())
    r_rows = {
        (t["R.a"], t["R.b"]) for t in db.instance().relation("R")
    }
    s_rows = {
        (t["S.b"], t["S.c"]) for t in db.instance().relation("S")
    }
    for row in result.result_values():
        a, c = row["R.a"], row["S.c"]
        assert any(
            ra == a and any(sb == rb and sc == c for sb, sc in s_rows)
            for ra, rb in r_rows
        )


# ---------------------------------------------------------------------------
# NedExplain properties
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(scenario())
def test_property_2_1_at_most_one_picky_subquery(case):
    db, canonical, tc = case
    instance = db.input_instance(canonical.aliases)
    compat = find_compatibles(tc, instance)
    result = evaluate_query(canonical.root, db.instance())
    for source in compat.direct_tuples():
        picky = picky_subqueries(
            canonical.root, result, compat.valid_tids, source
        )
        assert len(picky) <= 1


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_completeness_blamed_or_survives(case):
    """Each direct compatible tuple is blamed exactly when no valid
    successor of it reaches the query result."""
    db, canonical, tc = case
    instance = db.input_instance(canonical.aliases)
    compat = find_compatibles(tc, instance)
    if compat.is_empty:
        return
    engine = NedExplain(
        canonical,
        database=db,
        config=NedExplainConfig(early_termination=False),
    )
    report = engine.explain(tc)
    blamed_tids = {e.tid for e in report.detailed}

    from repro.core import valid_successors

    result = evaluate_query(canonical.root, db.instance())
    for source in compat.direct_tuples():
        survives = bool(
            valid_successors(
                canonical.root, result, compat.valid_tids, source
            )
        )
        assert (source.tid in blamed_tids) == (not survives)


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_algorithm_matches_declarative_oracle(case):
    """The (tid, subquery) pairs of Alg. 1-3 equal the picky
    subqueries of Def. 2.11, per compatible tuple."""
    db, canonical, tc = case
    instance = db.input_instance(canonical.aliases)
    compat = find_compatibles(tc, instance)
    if compat.is_empty:
        return
    engine = NedExplain(
        canonical,
        database=db,
        config=NedExplainConfig(early_termination=False),
    )
    report = engine.explain(tc)
    result = evaluate_query(canonical.root, db.instance())
    algorithmic = {
        (e.tid, id(e.subquery)) for e in report.detailed
    }
    declarative = set()
    for source in compat.direct_tuples():
        for node in picky_subqueries(
            canonical.root, result, compat.valid_tids, source
        ):
            declarative.add((source.tid, id(node)))
    assert algorithmic == declarative


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_early_termination_preserves_answers(case):
    db, canonical, tc = case
    fast = NedExplain(canonical, database=db).explain(tc)
    slow = NedExplain(
        canonical,
        database=db,
        config=NedExplainConfig(early_termination=False),
    ).explain(tc)
    assert {(e.tid, id(e.subquery)) for e in fast.detailed} == {
        (e.tid, id(e.subquery)) for e in slow.detailed
    }


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_unrenamed_attributes_are_source_attributes(case):
    db, canonical, tc = case
    for part in unrename_ctuple(canonical.root, tc):
        for attr in part.type:
            alias = attr.split(".", 1)[0] if "." in attr else None
            assert alias in canonical.aliases


# ---------------------------------------------------------------------------
# Satisfiability vs brute force
# ---------------------------------------------------------------------------
_OPS = ("=", "!=", "<", ">", "<=", ">=")


@st.composite
def single_var_conjunction(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    comparisons = []
    for _ in range(n):
        op = draw(st.sampled_from(_OPS))
        bound = draw(st.integers(min_value=0, max_value=6))
        comparisons.append(
            Comparison(Var("x"), op, Const(Fraction(bound)))
        )
    return And.of(*comparisons)


def _brute_force_satisfiable(condition) -> bool:
    # candidate points: every bound and the midpoints/outsides around
    bounds = sorted(
        {
            term.value
            for comp in condition.conjuncts()
            for term in (comp.right,)
            if isinstance(term, Const)
        }
    )
    candidates: list[Fraction] = []
    for value in bounds:
        candidates.extend(
            [value - Fraction(1, 2), value, value + Fraction(1, 2)]
        )
    candidates.extend([Fraction(-100), Fraction(100)])
    return any(
        condition.evaluate(valuation={"x": candidate})
        for candidate in candidates
    )


@settings(max_examples=200, deadline=None)
@given(single_var_conjunction())
def test_satisfiability_matches_brute_force(condition):
    assert is_satisfiable(condition) == _brute_force_satisfiable(condition)


# ---------------------------------------------------------------------------
# SPJA properties: aggregation answers
# ---------------------------------------------------------------------------
@st.composite
def spja_scenario(draw):
    """A random aggregate query over the R/S schema with a constrained
    count."""
    from repro.relational import AggregateCall

    db = draw(small_database())
    spec = SPJASpec(
        aliases={"R": "R", "S": "S"},
        joins=[JoinPair("R.b", "S.b")],
        group_by=("R.a",),
        aggregates=(AggregateCall("count", "S.c", "n"),),
    )
    canonical = canonicalize(spec, db.schema)
    target = draw(_VALUES)
    bound = draw(st.integers(min_value=1, max_value=8))
    from repro.core import ctuple_with_condition

    tc = ctuple_with_condition(
        {"R.a": target, "n": Var("x")}, x=(">=", bound)
    )
    return db, canonical, tc


@settings(max_examples=60, deadline=None)
@given(spja_scenario())
def test_spja_null_entries_only_above_breakpoint(case):
    """(null, m) answers (Def. 2.12, second part) can only occur at
    subqueries strictly containing the breakpoint V."""
    db, canonical, tc = case
    report = NedExplain(canonical, database=db).explain(tc)
    breakpoint = canonical.breakpoint
    assert breakpoint is not None
    for entry in report.detailed:
        if entry.tid is None:
            assert breakpoint.is_subquery_of(entry.subquery)
            assert entry.subquery is not breakpoint


@settings(max_examples=60, deadline=None)
@given(spja_scenario())
def test_spja_not_missing_flag_is_sound(case):
    """If the report says the answer is not missing, the result really
    contains a matching tuple -- and vice versa."""
    from repro.core import tuple_matches_ctuple
    from repro.relational import evaluate_query

    db, canonical, tc = case
    report = NedExplain(canonical, database=db).explain(tc)
    result = evaluate_query(
        canonical.root, db.instance(), canonical.aliases
    )
    actually_present = any(
        tuple_matches_ctuple(t, tc) for t in result.result
    )
    for answer in report.answers:
        if answer.answer_not_missing:
            assert actually_present
        elif not answer.no_compatible_data and not answer.is_empty():
            # a blamed answer should indeed be absent
            assert not actually_present


# ---------------------------------------------------------------------------
# Structural fingerprints and the shared evaluation cache
# ---------------------------------------------------------------------------
_CMP_OPS = ["<", "<=", ">", ">=", "=", "!="]


@settings(max_examples=60, deadline=None)
@given(small_database(), spj_query())
def test_fingerprint_stable_across_rebuilds(db, spec):
    """Canonicalizing the same spec twice yields distinct tree objects
    with identical fingerprints -- the property that makes the cache
    hit across independently-built engines."""
    first = canonicalize(spec, db.schema)
    second = canonicalize(spec, db.schema)
    assert first.root is not second.root
    assert query_fingerprint(
        first.root, first.aliases
    ) == query_fingerprint(second.root, second.aliases)


@st.composite
def perturbed_spec_pair(draw):
    """A base SPJ spec plus a structurally perturbed variant."""
    bound = draw(_VALUES)
    op = draw(st.sampled_from(_CMP_OPS))
    base = SPJASpec(
        aliases={"R": "R", "S": "S"},
        joins=[JoinPair("R.b", "S.b")],
        selections=[attr_cmp("R.a", op, bound)],
        projection=("R.a", "S.c"),
    )
    kind = draw(
        st.sampled_from(
            ["bound", "op", "selection-attr", "projection", "join"]
        )
    )
    if kind == "bound":
        other = draw(_VALUES.filter(lambda v: v != bound))
        selections = [attr_cmp("R.a", op, other)]
        perturbed = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.b", "S.b")],
            selections=selections,
            projection=("R.a", "S.c"),
        )
    elif kind == "op":
        other_op = draw(
            st.sampled_from([o for o in _CMP_OPS if o != op])
        )
        perturbed = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.b", "S.b")],
            selections=[attr_cmp("R.a", other_op, bound)],
            projection=("R.a", "S.c"),
        )
    elif kind == "selection-attr":
        perturbed = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.b", "S.b")],
            selections=[attr_cmp("S.c", op, bound)],
            projection=("R.a", "S.c"),
        )
    elif kind == "projection":
        perturbed = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.b", "S.b")],
            selections=[attr_cmp("R.a", op, bound)],
            projection=("S.c",),
        )
    else:  # a different join equality
        perturbed = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.id", "S.id")],
            selections=[attr_cmp("R.a", op, bound)],
            projection=("R.a", "S.c"),
        )
    return base, perturbed


@settings(max_examples=60, deadline=None)
@given(small_database(), perturbed_spec_pair())
def test_fingerprint_separates_perturbed_queries(db, pair):
    base_spec, perturbed_spec = pair
    base = canonicalize(base_spec, db.schema)
    perturbed = canonicalize(perturbed_spec, db.schema)
    assert query_fingerprint(
        base.root, base.aliases
    ) != query_fingerprint(perturbed.root, perturbed.aliases)


@settings(max_examples=30, deadline=None)
@given(small_database(), spj_query())
def test_fingerprint_depends_on_alias_mapping(db, spec):
    canonical = canonicalize(spec, db.schema)
    renamed = dict(canonical.aliases)
    renamed["R2"] = "R"
    assert query_fingerprint(
        canonical.root, canonical.aliases
    ) != query_fingerprint(canonical.root, renamed)


@settings(max_examples=25, deadline=None)
@given(small_database(), spj_query(), _VALUES)
def test_insert_bumps_version_and_forces_cache_miss(db, spec, needle):
    """Mutating a table must invalidate cached evaluations: the version
    counter moves, the data key changes, and the next explain misses."""
    canonical = canonicalize(spec, db.schema)
    cache = EvaluationCache()

    NedExplain(canonical, database=db, cache=cache).explain(
        CTuple({"R.a": needle})
    )
    assert cache.stats.evaluations == 1
    assert cache.stats.misses == 1

    # a second, independently built engine over the same state hits
    NedExplain(canonical, database=db, cache=cache).explain(
        CTuple({"R.a": needle})
    )
    assert cache.stats.evaluations == 1
    assert cache.stats.hits == 1

    table_version = db.table("R").version
    db_version = db.version
    db.table("R").insert(id=997, a=needle, b=needle)
    assert db.table("R").version == table_version + 1
    assert db.version > db_version

    NedExplain(canonical, database=db, cache=cache).explain(
        CTuple({"R.a": needle})
    )
    assert cache.stats.evaluations == 2
    assert cache.stats.misses == 2
