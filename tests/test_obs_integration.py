"""End-to-end observability over the paper's workloads.

The acceptance bar for the tracing subsystem, exercised on the real
engine rather than synthetic spans:

* a traced NedExplain run of **every** use case exports a JSON-lines
  trace that the validating reader accepts;
* the per-phase span durations *are* the reported phase totals
  (``report.phase_times_ms``) -- one measurement, two views, equal to
  within float-summation noise;
* operator spans carry the node fingerprint and output cardinality,
  and those cardinalities agree with :func:`actuals_from_trace` /
  :func:`explain_plan` over the Table 3 query catalog;
* the cache and budget layers surface their work as metrics.
"""

from __future__ import annotations

import math

import pytest

from repro import Budget, NedExplain, tracing
from repro.obs import Tracer, read_trace_jsonl, write_trace_jsonl
from repro.relational import EvaluationCache, evaluate_query
from repro.relational.statistics import actuals_from_trace, explain_plan
from repro.robustness.faults import FaultPlan, inject
from repro.workloads import (
    QUERIES,
    USE_CASES,
    get_canonical,
    get_database,
    use_case_setup,
)

USE_CASE_NAMES = [uc.name for uc in USE_CASES]


def _traced_run(name: str):
    """One use case, fresh cache, under a fresh tracer."""
    use_case, database, canonical = use_case_setup(name)
    engine = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    )
    with tracing() as tracer:
        report = engine.explain(use_case.predicate)
    return tracer, report


class TestTracedUseCases:
    @pytest.mark.parametrize("name", USE_CASE_NAMES)
    def test_trace_exports_and_validates(self, name, tmp_path):
        tracer, report = _traced_run(name)
        path = write_trace_jsonl(tracer, tmp_path / f"{name}.jsonl")
        spans, metrics = read_trace_jsonl(path)
        assert spans, "a traced run must produce spans"
        categories = {record["category"] for record in spans}
        assert "run" in categories
        assert "phase" in categories

    @pytest.mark.parametrize("name", USE_CASE_NAMES)
    def test_phase_span_sums_match_report(self, name):
        tracer, report = _traced_run(name)
        totals = tracer.phase_totals_ms()
        assert set(totals) == set(report.phase_times_ms)
        for phase, reported in report.phase_times_ms.items():
            assert math.isclose(
                totals[phase], reported, rel_tol=1e-9, abs_tol=1e-6
            ), f"{name}/{phase}: spans {totals[phase]} != {reported}"
        # ... and therefore the spans sum to the reported total
        assert math.isclose(
            sum(totals.values()),
            report.total_time_ms,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    def test_run_span_wraps_the_question(self):
        tracer, report = _traced_run("Crime5")
        runs = tracer.by_category("run")
        assert len(runs) == 1
        run = runs[0]
        assert run.parent_id is None
        assert run.tags["answers"] == len(report.answers)
        assert run.tags["partial"] is False
        # every phase span lives inside the run span
        run_ids = {run.span_id}
        for phase_span in tracer.by_category("phase"):
            assert phase_span.parent_id in run_ids

    def test_operator_spans_carry_fingerprint_and_cardinality(self):
        tracer, _ = _traced_run("Crime5")
        operators = tracer.by_category("operator")
        assert operators
        for operator in operators:
            assert len(operator.tags["fingerprint"]) == 12
            assert operator.tags["rows_out"] >= 0
            assert operator.tags["postorder"] >= 0
            assert operator.tags["op"]

    def test_cache_and_budget_metrics_recorded(self):
        use_case, database, canonical = use_case_setup("Crime5")
        engine = NedExplain(
            canonical, database=database, cache=EvaluationCache()
        )
        with tracing() as tracer:
            engine.explain(
                use_case.predicate, budget=Budget(max_rows=10_000)
            )
            engine.explain(use_case.predicate)  # second run: cache hits
        snapshot = tracer.metrics.snapshot()
        assert snapshot["cache.misses"]["value"] >= 1
        assert snapshot["cache.hits"]["value"] >= 1
        assert snapshot["budget.rows"]["value"] > 0
        assert snapshot["evaluator.operators"]["value"] > 0
        assert snapshot["evaluator.rows_out"]["count"] > 0
        assert snapshot["compatible.finds"]["value"] >= 1
        assert snapshot["successors.steps"]["value"] >= 1

    def test_fault_site_metrics_recorded(self):
        use_case, database, canonical = use_case_setup("Crime5")
        engine = NedExplain(
            canonical, database=database, cache=EvaluationCache()
        )
        plan = FaultPlan()  # no specs: observe sites, fire nothing
        with tracing() as tracer:
            with inject(plan):
                engine.explain(use_case.predicate)
        snapshot = tracer.metrics.snapshot()
        calls = [
            name for name in snapshot if name.startswith("faults.calls.")
        ]
        assert calls, "fault sites must be visible in the metrics"
        assert not any(
            name.startswith("faults.fired.") for name in snapshot
        )

    def test_tracing_does_not_change_answers(self):
        use_case, database, canonical = use_case_setup("Imdb2")
        plain = NedExplain(
            canonical, database=database, cache=EvaluationCache()
        ).explain(use_case.predicate)
        with tracing():
            traced = NedExplain(
                canonical, database=database, cache=EvaluationCache()
            ).explain(use_case.predicate)
        assert plain.summary() == traced.summary()


class TestExplainPlanActuals:
    """Satellite: estimated vs. span-recorded actual cardinalities."""

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_actuals_recorded_for_every_node(self, query):
        canonical = get_canonical(query)
        db_name = QUERIES[query][0]
        database = get_database(db_name)
        with tracing() as tracer:
            result = evaluate_query(
                canonical.root, database.instance(), canonical.aliases
            )
        actuals = actuals_from_trace(tracer, canonical.root)
        nodes = list(canonical.root.postorder())
        assert set(actuals) == {id(node) for node in nodes}
        for node in nodes:
            assert actuals[id(node)] == len(result.output(node))

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_explain_plan_renders_estimates_and_actuals(self, query):
        canonical = get_canonical(query)
        db_name = QUERIES[query][0]
        database = get_database(db_name)
        with tracing() as tracer:
            evaluate_query(
                canonical.root, database.instance(), canonical.aliases
            )
        text = explain_plan(
            canonical.root,
            database,
            canonical.aliases,
            actuals=actuals_from_trace(tracer, canonical.root),
        )
        lines = text.splitlines()
        assert len(lines) == len(list(canonical.root.postorder()))
        for line in lines:
            assert "[est=" in line
            assert "actual=" in line

    def test_foreign_tree_spans_are_ignored(self):
        crime = get_canonical("Q1")
        imdb = get_canonical("Q10")
        crime_db = get_database(QUERIES["Q1"][0])
        imdb_db = get_database(QUERIES["Q10"][0])
        with tracing() as tracer:
            evaluate_query(
                crime.root, crime_db.instance(), crime.aliases
            )
            evaluate_query(imdb.root, imdb_db.instance(), imdb.aliases)
        actuals = actuals_from_trace(tracer, crime.root)
        assert set(actuals) == {
            id(node) for node in crime.root.postorder()
        }
