"""Unit tests for renamings (Def. 2.1) and aggregate calls (Def. 2.2-3)."""

import pytest

from repro.errors import QueryError, RenamingError
from repro.relational import (
    AggregateCall,
    RenameTriple,
    Renaming,
    base_tuple,
    natural_renaming,
)
from repro.relational.aggregates import check_distinct_aliases


# ---------------------------------------------------------------------------
# Renamings
# ---------------------------------------------------------------------------
class TestRenaming:
    def test_codomain(self):
        nu = Renaming.of(("A.aid", "AB.aid", "aid"))
        assert nu.codomain == frozenset({"aid"})

    def test_new_attribute_must_be_unqualified(self):
        with pytest.raises(RenamingError):
            RenameTriple("A.x", "B.x", "C.x")

    def test_same_source_twice_rejected(self):
        with pytest.raises(RenamingError):
            RenameTriple("A.x", "A.x", "x")

    def test_duplicate_new_names_rejected(self):
        with pytest.raises(RenamingError):
            Renaming.of(("A.x", "B.x", "v"), ("A.y", "B.y", "v"))

    def test_source_mapped_twice_rejected(self):
        with pytest.raises(RenamingError):
            Renaming.of(("A.x", "B.x", "v"), ("A.x", "B.y", "w"))

    def test_validate_against(self):
        nu = Renaming.of(("A.x", "B.x", "x"))
        nu.validate_against({"A.x"}, {"B.x"})
        with pytest.raises(RenamingError):
            nu.validate_against({"A.y"}, {"B.x"})
        with pytest.raises(RenamingError):
            nu.validate_against({"A.x"}, {"B.y"})

    def test_validate_clash_with_existing_attr(self):
        nu = Renaming.of(("A.x", "B.x", "y"))
        with pytest.raises(RenamingError):
            nu.validate_against({"A.x", "y"}, {"B.x"})

    def test_apply_to_attribute(self):
        nu = Renaming.of(("A.x", "B.x", "x"))
        assert nu.apply_to_attribute("A.x") == "x"
        assert nu.apply_to_attribute("B.x") == "x"
        assert nu.apply_to_attribute("A.y") == "A.y"

    def test_apply_to_type(self):
        nu = Renaming.of(("A.x", "B.x", "x"))
        assert nu.apply_to_type({"A.x", "A.y"}) == frozenset({"x", "A.y"})

    def test_left_right_mappings(self):
        nu = Renaming.of(("A.x", "B.x", "x"))
        assert nu.left_mapping({"A.x", "A.y"}) == {"A.x": "x"}
        assert nu.right_mapping({"B.x"}) == {"B.x": "x"}

    def test_inversion(self):
        nu = Renaming.of(("A.x", "B.x", "x"))
        assert nu.invert_left("x") == "A.x"
        assert nu.invert_right("x") == "B.x"
        assert nu.invert_left("other") == "other"

    def test_natural_renaming_defaults_to_left_short_name(self):
        nu = natural_renaming([("A.aid", "AB.aid")])
        assert nu.triples[0].new == "aid"

    def test_natural_renaming_explicit_names(self):
        nu = natural_renaming([("A.x", "B.y")], new_names=["v"])
        assert nu.triples[0].new == "v"

    def test_natural_renaming_length_mismatch(self):
        with pytest.raises(RenamingError):
            natural_renaming([("A.x", "B.y")], new_names=["v", "w"])

    def test_iteration_and_len(self):
        nu = Renaming.of(("A.x", "B.x", "x"), ("A.y", "B.y", "y"))
        assert len(nu) == 2
        assert [t.new for t in nu] == ["x", "y"]


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
def _group(*prices):
    return [
        base_tuple("B", f"t{i}", price=p) for i, p in enumerate(prices)
    ]


class TestAggregateCall:
    def test_sum(self):
        call = AggregateCall("sum", "B.price", "s")
        assert call.compute(_group(1, 2, 3)) == 6

    def test_count_ignores_nulls(self):
        call = AggregateCall("count", "B.price", "c")
        assert call.compute(_group(1, None, 3)) == 2

    def test_avg(self):
        call = AggregateCall("avg", "B.price", "a")
        assert call.compute(_group(15, 45)) == 30

    def test_min_max(self):
        assert AggregateCall("min", "B.price", "m").compute(
            _group(3, 1, 2)
        ) == 1
        assert AggregateCall("max", "B.price", "m").compute(
            _group(3, 1, 2)
        ) == 3

    def test_empty_group(self):
        assert AggregateCall("count", "B.price", "c").compute([]) == 0
        assert AggregateCall("sum", "B.price", "s").compute([]) is None
        assert AggregateCall("avg", "B.price", "a").compute([]) is None
        assert AggregateCall("min", "B.price", "m").compute([]) is None

    def test_all_null_group(self):
        assert AggregateCall("sum", "B.price", "s").compute(
            _group(None, None)
        ) is None

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            AggregateCall("median", "B.price", "m")

    def test_qualified_alias_rejected(self):
        with pytest.raises(QueryError):
            AggregateCall("sum", "B.price", "B.s")

    def test_check_distinct_aliases(self):
        calls = [
            AggregateCall("sum", "B.price", "s"),
            AggregateCall("avg", "B.price", "s"),
        ]
        with pytest.raises(QueryError):
            check_distinct_aliases(calls)
