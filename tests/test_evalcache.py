"""Unit tests for the shared evaluation cache.

Covers the pieces the differential suites rely on:

* LRU behaviour and the hit/miss/eviction/evaluation counters;
* invalidation through the version counters (``Database.insert``,
  direct ``Table.insert``, explicit ``create_index``) and the
  *non*-invalidation of pure read paths (lazy index builds);
* :meth:`EvaluationResult.rebind` onto structurally equal but distinct
  trees;
* the node-lifetime regression: ``EvaluationResult`` keys its maps by
  ``id(node)``, and CPython reuses ids of garbage-collected objects, so
  the result must hold strong references to its nodes.
"""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.core import JoinPair, SPJASpec, canonicalize
from repro.errors import ConfigurationError, EvaluationError
from repro.relational import (
    CacheStats,
    Database,
    EvaluationCache,
    attr_cmp,
    evaluate_query,
    query_fingerprint,
)


def make_db() -> Database:
    db = Database("cache-unit")
    db.create_table("R", ["id", "a", "b"], key="id")
    db.create_table("S", ["id", "b", "c"], key="id")
    db.insert("R", id=1, a=1, b=1)
    db.insert("R", id=2, a=2, b=2)
    db.insert("S", id=1, b=1, c="x")
    db.insert("S", id=2, b=2, c="y")
    return db


def make_spec(bound: int) -> SPJASpec:
    return SPJASpec(
        aliases={"R": "R", "S": "S"},
        joins=[JoinPair("R.b", "S.b")],
        selections=[attr_cmp("R.a", ">=", bound)],
        projection=("R.a", "S.c"),
    )


def cache_fetch(cache, db, canonical):
    return cache.get_or_evaluate(
        canonical.root,
        db.input_instance(canonical.aliases),
        canonical.aliases,
    )


# ---------------------------------------------------------------------------
# LRU + counters
# ---------------------------------------------------------------------------
def test_lru_eviction_and_counters():
    db = make_db()
    cache = EvaluationCache(maxsize=2)
    queries = [canonicalize(make_spec(b), db.schema) for b in (0, 1, 2)]

    for canonical in queries:
        cache_fetch(cache, db, canonical)
    assert len(cache) == 2
    assert cache.stats == CacheStats(
        hits=0, misses=3, evictions=1, evaluations=3
    )

    # the oldest entry (bound=0) was evicted; refetching it misses
    cache_fetch(cache, db, queries[0])
    assert cache.stats.misses == 4
    # ... and pushed out bound=1 in turn, while bound=2 survived
    cache_fetch(cache, db, queries[2])
    assert cache.stats.hits == 1


def test_hit_refreshes_lru_position():
    db = make_db()
    cache = EvaluationCache(maxsize=2)
    first = canonicalize(make_spec(0), db.schema)
    second = canonicalize(make_spec(1), db.schema)
    third = canonicalize(make_spec(2), db.schema)

    cache_fetch(cache, db, first)
    cache_fetch(cache, db, second)
    cache_fetch(cache, db, first)  # hit: first becomes most recent
    cache_fetch(cache, db, third)  # evicts second, not first
    cache_fetch(cache, db, first)
    assert cache.stats.hits == 2
    cache_fetch(cache, db, second)
    assert cache.stats.misses == 4
    assert cache.stats.evictions == 2


def test_maxsize_must_be_positive():
    with pytest.raises(ConfigurationError):
        EvaluationCache(maxsize=0)


def test_stats_reset_and_hit_rate():
    db = make_db()
    cache = EvaluationCache()
    canonical = canonicalize(make_spec(0), db.schema)
    cache_fetch(cache, db, canonical)
    cache_fetch(cache, db, canonical)
    assert cache.stats.lookups == 2
    assert cache.stats.hit_rate == pytest.approx(0.5)
    cache.stats.reset()
    assert cache.stats == CacheStats()
    cache.clear()
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Version counters and invalidation
# ---------------------------------------------------------------------------
def test_database_insert_invalidates():
    db = make_db()
    cache = EvaluationCache()
    canonical = canonicalize(make_spec(0), db.schema)
    cache_fetch(cache, db, canonical)
    cache_fetch(cache, db, canonical)
    assert cache.stats.hits == 1

    db.insert("R", id=3, a=3, b=1)
    result = cache_fetch(cache, db, canonical)
    assert cache.stats.misses == 2
    # and the fresh evaluation sees the new row
    assert any(
        row["R.a"] == 3 for row in result.result_values()
    )


def test_direct_table_insert_invalidates():
    db = make_db()
    cache = EvaluationCache()
    canonical = canonicalize(make_spec(0), db.schema)
    cache_fetch(cache, db, canonical)
    db.table("S").insert(id=3, b=1, c="z")
    cache_fetch(cache, db, canonical)
    assert cache.stats.misses == 2


def test_create_index_is_ddl_and_invalidates():
    db = make_db()
    cache = EvaluationCache()
    canonical = canonicalize(make_spec(0), db.schema)
    cache_fetch(cache, db, canonical)
    db.table("R").create_index("b")
    cache_fetch(cache, db, canonical)
    assert cache.stats.misses == 2


def test_lazy_index_reads_do_not_invalidate():
    """``select_ids_eq`` builds indexes on demand (the CompatibleFinder
    path); a pure read must not bump the version, or one explain would
    invalidate the evaluation the next one needs."""
    db = make_db()
    table = db.table("R")
    before = (table.version, db.version)
    table.select_ids_eq("a", 1)
    table.select_ids_eq("b", 2)
    assert (table.version, db.version) == before


def test_input_instance_keys_stable_across_derivations():
    db = make_db()
    canonical = canonicalize(make_spec(0), db.schema)
    first = db.input_instance(canonical.aliases)
    second = db.input_instance(canonical.aliases)
    assert first.data_key == second.data_key

    db.insert("R", id=9, a=9, b=9)
    third = db.input_instance(canonical.aliases)
    assert third.data_key != first.data_key


def test_mutated_snapshot_loses_adopted_key():
    """An instance mutated after derivation no longer represents the
    database state and must stop sharing its cache key."""
    db = make_db()
    canonical = canonicalize(make_spec(0), db.schema)
    instance = db.input_instance(canonical.aliases)
    shared_key = instance.data_key
    instance.insert_values("R", "t-extra", id=50, a=5, b=5)
    assert instance.data_key != shared_key
    assert instance.data_key != db.input_instance(canonical.aliases).data_key


# ---------------------------------------------------------------------------
# Rebinding results onto equal trees
# ---------------------------------------------------------------------------
def test_hit_rebinds_onto_equal_tree():
    db = make_db()
    cache = EvaluationCache()
    first = canonicalize(make_spec(1), db.schema)
    second = canonicalize(make_spec(1), db.schema)
    assert first.root is not second.root
    assert query_fingerprint(
        first.root, first.aliases
    ) == query_fingerprint(second.root, second.aliases)

    original = cache_fetch(cache, db, first)
    rebound = cache_fetch(cache, db, second)
    assert cache.stats.hits == 1
    assert cache.stats.evaluations == 1

    # the rebound result answers queries keyed by the *second* tree
    for old, new in zip(
        first.root.postorder(), second.root.postorder()
    ):
        assert list(original.output(old)) == list(rebound.output(new))
    assert rebound.root is second.root


def test_rebind_rejects_different_shape():
    db = make_db()
    canonical = canonicalize(make_spec(0), db.schema)
    other = canonicalize(
        SPJASpec(
            aliases={"R": "R"},
            projection=("R.a",),
        ),
        db.schema,
    )
    result = evaluate_query(
        canonical.root, db.instance(), canonical.aliases
    )
    with pytest.raises(EvaluationError):
        result.rebind(other.root)


# ---------------------------------------------------------------------------
# Node lifetime: id() reuse after garbage collection
# ---------------------------------------------------------------------------
def test_result_holds_strong_references_to_nodes():
    db = make_db()
    canonical = canonicalize(make_spec(0), db.schema)
    result = evaluate_query(
        canonical.root, db.instance(), canonical.aliases
    )
    ref = weakref.ref(canonical.root)
    del canonical
    gc.collect()
    # the result keeps the tree alive...
    assert ref() is not None
    del result
    gc.collect()
    # ...and releases it with the result
    assert ref() is None


def test_cached_result_survives_gc_and_id_reuse():
    """Regression: evaluate through the cache, drop the original tree,
    churn allocations so CPython reuses object ids, then fetch with a
    structurally equal fresh tree.  Without strong node references the
    ``id(node)``-keyed maps would silently serve wrong rows."""
    db = make_db()
    cache = EvaluationCache()
    canonical = canonicalize(make_spec(1), db.schema)
    result = cache_fetch(cache, db, canonical)
    expected = [
        [tuple(sorted(t.items())) for t in result.output(node)]
        for node in canonical.root.postorder()
    ]
    del canonical, result
    gc.collect()

    # allocation churn: plenty of fresh Query objects at recycled ids
    churn = [canonicalize(make_spec(1), db.schema) for _ in range(64)]
    del churn
    gc.collect()

    fresh = canonicalize(make_spec(1), db.schema)
    rebound = cache_fetch(cache, db, fresh)
    assert cache.stats.evaluations == 1  # still the original evaluation
    assert cache.stats.hits == 1
    got = [
        [tuple(sorted(t.items())) for t in rebound.output(node)]
        for node in fresh.root.postorder()
    ]
    assert got == expected


# ---------------------------------------------------------------------------
# Concurrency: single-flight misses, counter exactness, invariants
# under thread races and injected faults (the parallel executor
# hammers this cache from N workers)
# ---------------------------------------------------------------------------
def test_concurrent_same_key_is_single_flight():
    """N threads racing on one cold key: exactly one evaluation, one
    miss, N-1 hits -- the lock is held across the miss evaluation."""
    import threading

    db = make_db()
    cache = EvaluationCache()
    threads = 8
    barrier = threading.Barrier(threads)
    errors = []

    def fetch():
        canonical = canonicalize(make_spec(1), db.schema)
        barrier.wait()
        try:
            cache_fetch(cache, db, canonical)
        except Exception as exc:  # noqa: BLE001 -- collected for assert
            errors.append(exc)

    pool = [threading.Thread(target=fetch) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert not errors
    assert cache.stats.evaluations == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == threads - 1
    cache.check_invariants()


def test_concurrent_mixed_keys_with_evictions_keep_invariants():
    """8 threads over 4 keys in a 2-entry cache: counters stay exact
    (hits + misses == requests) and the LRU structure stays sound."""
    import threading

    db = make_db()
    cache = EvaluationCache(maxsize=2)
    threads, rounds, bounds = 8, 10, (0, 1, 2, 3)
    barrier = threading.Barrier(threads)
    errors = []

    def hammer(offset):
        barrier.wait()
        try:
            for r in range(rounds):
                bound = bounds[(offset + r) % len(bounds)]
                canonical = canonicalize(make_spec(bound), db.schema)
                cache_fetch(cache, db, canonical)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    pool = [
        threading.Thread(target=hammer, args=(n,)) for n in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert not errors
    stats = cache.stats
    assert stats.hits + stats.misses == threads * rounds
    assert stats.evaluations == stats.misses
    cache.check_invariants()


def test_concurrent_faulted_access_never_corrupts_the_cache():
    """Seeded cache-site faults while 4 threads race: every faulted
    call raises a contained ReproError and the cache invariants hold
    after every seed (no partial entries, no broken LRU links)."""
    import threading

    from repro.errors import ReproError
    from repro.robustness import FaultPlan, inject

    db = make_db()
    for seed in range(20):
        cache = EvaluationCache(maxsize=2)
        plan = FaultPlan.random(
            seed,
            sites=("cache.lookup", "cache.store"),
            faults=2,
            max_call=8,
            budget_rate=0.0,
        )
        barrier = threading.Barrier(4)
        unexpected = []

        def worker(offset, cache=cache, barrier=barrier,
                   unexpected=unexpected):
            barrier.wait()
            for r in range(6):
                canonical = canonicalize(
                    make_spec((offset + r) % 3), db.schema
                )
                try:
                    cache_fetch(cache, db, canonical)
                except ReproError:
                    continue  # contained: the injected fault
                except Exception as exc:  # noqa: BLE001
                    unexpected.append(exc)

        with inject(plan):
            pool = [
                threading.Thread(target=worker, args=(n,))
                for n in range(4)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
        assert not unexpected, f"seed {seed}: {unexpected!r}"
        cache.check_invariants()
