"""Why-not-as-a-service: quotas, admission, the HTTP surface, chaos.

Four layers of proof, mirroring how the service is built:

1. **units** -- quota parsing/token buckets on a ManualClock, the
   admission gate, request-budget parsing, config validation;
2. **state** -- the socket-free application core: registration,
   journaled batches, idempotent retries, recovery, readiness;
3. **live server** -- a real ``ThreadingHTTPServer`` on an ephemeral
   port driven through :class:`repro.service.client.ServiceClient`:
   happy paths, error envelopes, deterministic overload (429 +
   ``Retry-After`` while ``/healthz`` stays 200), per-tenant quota
   refusal, degraded 206 answers, drain semantics, and seeded
   :class:`~repro.robustness.FaultPlan` chaos over the socket;
4. **subprocess** -- the acceptance proofs: a ``workers=4`` batch over
   HTTP SIGKILLed mid-run resumes on restart *byte-identical* to an
   uninterrupted run (under ``REPRO_MANUAL_CLOCK``), and SIGTERM
   drains to exit code 0 with an empty pending queue.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from contextlib import contextmanager
from io import StringIO
from pathlib import Path

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    JournalError,
    LoadShedError,
    QuotaExceededError,
    ServiceError,
)
from repro.obs import ManualClock, use_clock
from repro.robustness import Budget, FaultPlan, inject
from repro.service import (
    AdmissionGate,
    QuotaRegistry,
    QuotaSpec,
    ServiceConfig,
    ServiceState,
    TokenBucket,
    serve,
)
from repro.service.client import ServiceClient

_SRC = str(Path(repro.__file__).resolve().parents[1])

SQL = "SELECT Person.name FROM Person WHERE Person.hair = 'brown'"
REGISTER = {"name": "crime", "use_case_db": "crime"}


def _explain_body(question="(Person.name: Roger)", **extra):
    body = {"database": "crime", "sql": SQL, "why_not": question}
    body.update(extra)
    return body


def _batch_body(questions=None, **extra):
    return _explain_body(
        questions
        if questions is not None
        else ["(Person.name: Roger)", "(Person.name: Hannah)"],
        **extra,
    )


# ---------------------------------------------------------------------------
# quotas
# ---------------------------------------------------------------------------
class TestQuotaSpec:
    @pytest.mark.parametrize(
        "text, rate, burst",
        [
            ("10/s", 10.0, 10),
            ("120/min", 2.0, 2),
            ("5/s:20", 5.0, 20),
            ("0.5/s", 0.5, 1),
            ("30/minute:3", 0.5, 3),
            (" 2 / sec : 7 ", 2.0, 7),
        ],
    )
    def test_parse_grammar(self, text, rate, burst):
        spec = QuotaSpec.parse(text)
        assert spec.rate_per_s == pytest.approx(rate)
        assert spec.burst == burst

    @pytest.mark.parametrize(
        "text", ["", "10", "/s", "10/h", "10/s:", "-1/s", "ten/s", "0/s"]
    )
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ConfigurationError):
            QuotaSpec.parse(text)

    def test_invalid_spec_values_rejected(self):
        with pytest.raises(ConfigurationError):
            QuotaSpec(rate_per_s=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            QuotaSpec(rate_per_s=1.0, burst=0)


class TestTokenBucket:
    def test_burst_then_refusal_with_exact_retry_after(self):
        clock = ManualClock()
        with use_clock(clock):
            bucket = TokenBucket(QuotaSpec(rate_per_s=2.0, burst=3))
            assert [bucket.try_acquire() for _ in range(3)] == [
                0.0,
                0.0,
                0.0,
            ]
            # empty: one token arrives after 1/rate seconds
            assert bucket.try_acquire() == pytest.approx(0.5)

    def test_refill_is_lazy_and_capped_at_burst(self):
        clock = ManualClock()
        with use_clock(clock):
            bucket = TokenBucket(QuotaSpec(rate_per_s=1.0, burst=2))
            assert bucket.try_acquire() == 0.0
            assert bucket.try_acquire() == 0.0
            clock.advance(100.0)  # far past burst: capped, not banked
            assert bucket.try_acquire() == 0.0
            assert bucket.try_acquire() == 0.0
            assert bucket.try_acquire() == pytest.approx(1.0)

    def test_manual_clock_never_refills(self):
        """Under REPRO_MANUAL_CLOCK the clock never moves on its own:
        the burst is the whole budget, deterministically."""
        with use_clock(ManualClock()):
            bucket = TokenBucket(QuotaSpec(rate_per_s=1000.0, burst=1))
            assert bucket.try_acquire() == 0.0
            assert bucket.try_acquire() > 0.0


class TestQuotaRegistry:
    def test_disabled_registry_admits_everything(self):
        registry = QuotaRegistry(None)
        for _ in range(100):
            registry.check("anyone")
        assert len(registry) == 0

    def test_tenants_are_isolated(self):
        clock = ManualClock()
        with use_clock(clock):
            registry = QuotaRegistry(QuotaSpec(1.0, 1))
            registry.check("alice")
            with pytest.raises(QuotaExceededError):
                registry.check("alice")
            registry.check("bob")  # bob's bucket is untouched
        assert len(registry) == 2

    def test_error_carries_tenant_and_retry_after(self):
        with use_clock(ManualClock()):
            registry = QuotaRegistry(QuotaSpec(2.0, 1))
            registry.check("alice")
            with pytest.raises(QuotaExceededError) as excinfo:
                registry.check("alice")
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.retry_after_s == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# admission gate
# ---------------------------------------------------------------------------
class TestAdmissionGate:
    def test_unlimited_gate_counts(self):
        gate = AdmissionGate(None)
        gate.acquire()
        gate.acquire()
        assert gate.active == 2
        gate.release()
        gate.release()
        assert gate.active == 0

    def test_sheds_past_the_limit_immediately(self):
        gate = AdmissionGate(2)
        gate.acquire()
        gate.acquire()
        with pytest.raises(LoadShedError):
            gate.acquire()
        assert gate.shed_total == 1
        gate.release()
        gate.acquire()  # a freed slot admits again

    def test_context_manager_releases_on_error(self):
        gate = AdmissionGate(1)
        with pytest.raises(RuntimeError):
            with gate:
                raise RuntimeError("boom")
        assert gate.active == 0

    def test_release_underflow_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(None).release()

    def test_limit_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(0)


# ---------------------------------------------------------------------------
# request budgets and config
# ---------------------------------------------------------------------------
class TestBudgetFromRequest:
    def test_none_and_empty_mean_no_budget(self):
        assert Budget.from_request(None) is None
        assert Budget.from_request({}) is None

    def test_deadline_ms_becomes_seconds(self):
        budget = Budget.from_request(
            {"deadline_ms": 1500, "max_rows": 10}
        )
        assert budget.deadline_s == pytest.approx(1.5)
        assert budget.max_rows == 10
        assert budget.max_comparisons is None

    @pytest.mark.parametrize(
        "spec",
        [
            "fast",
            {"deadline_s": 1},
            {"deadline_ms": "soon"},
            {"max_rows": True},
            {"max_rows": -5},
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            Budget.from_request(spec)


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(shed_after=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(port=70000)
        with pytest.raises(ConfigurationError):
            ServiceConfig(drain_timeout_s=0)

    def test_journal_dir_coerced_to_path(self, tmp_path):
        config = ServiceConfig(journal_dir=str(tmp_path))
        assert isinstance(config.journal_dir, Path)


# ---------------------------------------------------------------------------
# the socket-free application core
# ---------------------------------------------------------------------------
class TestServiceState:
    def _state(self, tmp_path=None, **kw):
        if tmp_path is not None:
            kw.setdefault("journal_dir", tmp_path / "journal")
        state = ServiceState(ServiceConfig(**kw))
        state.ready.set()
        return state

    def test_register_validates_name_and_source(self):
        state = self._state()
        with pytest.raises(ConfigurationError, match="name"):
            state.register_database({"use_case_db": "crime"})
        with pytest.raises(ConfigurationError, match="exactly one"):
            state.register_database({"name": "x"})
        with pytest.raises(ConfigurationError, match="exactly one"):
            state.register_database(
                {"name": "x", "use_case_db": "crime", "csv_dir": "y"}
            )
        with pytest.raises(ConfigurationError, match="unknown use-case"):
            state.register_database({"name": "x", "use_case_db": "nope"})

    def test_unknown_database_is_404(self):
        state = self._state()
        with pytest.raises(ServiceError) as excinfo:
            state.explain_single(_explain_body())
        assert excinfo.value.status == 404

    def test_explain_single_full_report(self):
        state = self._state()
        state.register_database(REGISTER)
        document = state.explain_single(_explain_body())
        assert document["degradation_level"] == "full"
        assert document["report"]["answers"]

    def test_engine_cache_is_shared_per_database(self):
        state = self._state()
        state.register_database(REGISTER)
        state.explain_single(_explain_body())
        state.explain_single(_explain_body("(Person.name: Hannah)"))
        stats = state._caches["crime"].stats
        assert stats.evaluations == 1  # second question hit the cache

    def test_batch_journals_and_is_idempotent(self, tmp_path):
        state = self._state(tmp_path)
        state.register_database(REGISTER)
        body = _batch_body(request_id="b1", workers=2)
        document, fresh = state.explain_batch(body)
        assert fresh
        assert document["degradation_level"] == "full"
        journal_dir = state.config.journal_dir
        assert (journal_dir / "b1.request.json").exists()
        assert (journal_dir / "b1.journal.jsonl").exists()
        assert (journal_dir / "b1.result.json").exists()
        again, fresh = state.explain_batch(body)
        assert not fresh  # served from the stored result, no re-run
        assert again["outcomes"] == document["outcomes"]
        assert state.batch_result("b1")["outcomes"] == document[
            "outcomes"
        ]

    def test_batch_result_distinguishes_unknown_from_in_flight(
        self, tmp_path
    ):
        state = self._state(tmp_path)
        with pytest.raises(ServiceError) as excinfo:
            state.batch_result("nope")
        assert excinfo.value.status == 404
        # a manifest without a result means in flight / crashed: 409
        (state.config.journal_dir / "hang.request.json").write_text(
            "{}"
        )
        with pytest.raises(ServiceError) as excinfo:
            state.batch_result("hang")
        assert excinfo.value.status == 409

    def test_recover_reruns_unfinished_manifests(self, tmp_path):
        state = self._state(tmp_path)
        state.register_database(REGISTER)
        manifest = _batch_body(request_id="crashed")
        manifest_path = (
            state.config.journal_dir / "crashed.request.json"
        )
        manifest_path.write_text(json.dumps(manifest))

        # a fresh state (the restarted process) sees the registration
        # (persisted databases.json) and finishes the batch
        fresh = self._state(tmp_path)
        recovered = fresh.recover()
        assert recovered == ["crashed"]
        result = fresh.batch_result("crashed")
        assert len(result["outcomes"]) == 2
        assert fresh.recover() == []  # second recovery: nothing to do

    def test_recovery_failure_never_blocks_startup(self, tmp_path):
        state = self._state(tmp_path)
        (state.config.journal_dir / "bad.request.json").write_text(
            "{not json"
        )
        assert state.recover() == []
        ready, document = state.ready_document()
        assert ready  # degraded info is reported, not fatal
        assert any("bad" in e for e in document["recovery_errors"])

    def test_readiness_states(self):
        state = ServiceState(ServiceConfig())
        ready, document = state.ready_document()
        assert not ready and document["status"] == "starting"
        state.ready.set()
        ready, document = state.ready_document()
        assert ready and document["status"] == "ready"
        # an open breaker flips readiness off (stop routing here)
        breaker = state.breakers.breaker("evaluator.operator")
        for _ in range(4):
            breaker.record_failure()
        ready, document = state.ready_document()
        assert not ready and document["status"] == "breaker-open"
        assert document["open_breakers"] == ["evaluator.operator"]
        breaker._results.clear()
        breaker._transition("closed")
        assert state.begin_drain("test")
        assert not state.begin_drain("again")  # idempotent
        ready, document = state.ready_document()
        assert not ready and document["status"] == "draining"

    def test_invalid_request_id_rejected(self, tmp_path):
        state = self._state(tmp_path)
        state.register_database(REGISTER)
        with pytest.raises(ConfigurationError, match="request_id"):
            state.explain_batch(
                _batch_body(request_id="../escape")
            )
        with pytest.raises(ConfigurationError):
            state.batch_result("../escape")


# ---------------------------------------------------------------------------
# live in-process server
# ---------------------------------------------------------------------------
@contextmanager
def _live_server(**config_kw):
    config_kw.setdefault("port", 0)
    config = ServiceConfig(**config_kw)
    started: dict = {}
    ready = threading.Event()
    result: dict = {}

    def _on_started(httpd):
        started["httpd"] = httpd
        ready.set()

    thread = threading.Thread(
        target=lambda: result.setdefault(
            "code",
            serve(
                config,
                stdout=StringIO(),
                install_signal_handlers=False,
                on_started=_on_started,
            ),
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(20), "server never started"
    httpd = started["httpd"]
    client = ServiceClient(port=httpd.server_address[1])
    client.wait_ready(20)
    try:
        yield httpd, client
    finally:
        httpd.state.begin_drain("test teardown")
        threading.Thread(target=httpd.shutdown, daemon=True).start()
        thread.join(20)
        assert result.get("code") == 0


class TestLiveServer:
    def test_health_routes_and_envelopes(self):
        with _live_server() as (httpd, client):
            assert client.healthz().status == 200
            assert client.readyz().body["status"] == "ready"
            missing = client.request("GET", "/nope")
            assert missing.status == 404
            assert set(missing.error) == {"type", "message", "status"}
            no_body = client.request("POST", "/v1/explain")
            assert no_body.status == 400
            bad_json = client.request("POST", "/v1/databases")
            assert bad_json.status == 400

    def test_explain_and_batch_over_http(self):
        with _live_server(workers=2) as (httpd, client):
            assert client.register_database(REGISTER).ok
            single = client.explain(_explain_body())
            assert single.status == 200
            assert single.body["degradation_level"] == "full"
            batch = client.explain_batch(_batch_body(workers=2))
            assert batch.status == 200
            assert len(batch.body["outcomes"]) == 2
            assert batch.body["cached_result"] is False
            listed = client.databases()
            assert "crime" in listed.body["databases"]

    def test_degraded_answer_is_206_not_a_hang(self):
        with _live_server() as (httpd, client):
            client.register_database(REGISTER)
            degraded = client.explain(
                _explain_body(budget={"max_comparisons": 1})
            )
            assert degraded.status == 206
            assert degraded.body["degradation_level"] == "partial"
            assert degraded.body["report"]["partial"] is True

    def test_deadline_header_feeds_the_budget(self):
        with _live_server() as (httpd, client):
            client.register_database(REGISTER)
            bad = client.explain(_explain_body(), deadline_ms=-5)
            assert bad.status == 400  # validated, not silently ignored
            ok = client.explain(_explain_body(), deadline_ms=60_000)
            assert ok.status == 200

    def test_overload_sheds_429_while_healthz_stays_200(self):
        """The acceptance criterion, deterministically: with both
        admission slots held, new work is refused with 429 +
        Retry-After while liveness stays green; freed slots admit
        again and those requests complete."""
        with _live_server(shed_after=2) as (httpd, client):
            client.register_database(REGISTER)
            gate = httpd.state.gate
            gate.acquire()
            gate.acquire()
            try:
                shed = client.explain(_explain_body())
                assert shed.status == 429
                assert shed.error["type"] == "LoadShedError"
                assert shed.retry_after_s >= 1
                assert client.healthz().status == 200
                assert httpd.state.gate.shed_total >= 1
            finally:
                gate.release()
                gate.release()
            admitted = client.explain(_explain_body())
            assert admitted.status == 200  # admitted work completes

    def test_tenant_quota_yields_429_with_retry_after(self):
        with _live_server(quota=QuotaSpec.parse("1/min:2")) as (
            httpd,
            client,
        ):
            client.register_database(REGISTER)
            alice = ServiceClient(
                port=httpd.server_address[1], tenant="alice"
            )
            bob = ServiceClient(
                port=httpd.server_address[1], tenant="bob"
            )
            assert alice.explain(_explain_body()).status == 200
            assert alice.explain(_explain_body()).status == 200
            refused = alice.explain(_explain_body())
            assert refused.status == 429
            assert refused.error["type"] == "QuotaExceededError"
            assert refused.retry_after_s >= 1
            # bob is unaffected by alice's exhaustion
            assert bob.explain(_explain_body()).status == 200

    def test_draining_refuses_work_but_stays_alive(self):
        with _live_server() as (httpd, client):
            client.register_database(REGISTER)
            httpd.state.begin_drain("test drain")
            refused = client.explain(_explain_body())
            assert refused.status == 503
            assert refused.retry_after_s >= 1
            assert client.healthz().status == 200
            not_ready = client.readyz()
            assert not_ready.status == 503
            assert not_ready.body["status"] == "draining"

    def test_metrics_json_and_prometheus(self):
        with _live_server() as (httpd, client):
            client.register_database(REGISTER)
            client.explain(_explain_body())
            snapshot = client.metrics().body["metrics"]
            assert snapshot["service.responses"]["value"] >= 2
            assert snapshot["service.route.explain"]["value"] == 1
            text = client.metrics_prometheus().body["raw"]
            assert "# TYPE service_responses counter" in text
            assert "service_route_explain 1" in text

    def test_batch_result_lifecycle_over_http(self, tmp_path):
        with _live_server(journal_dir=tmp_path / "journal") as (
            httpd,
            client,
        ):
            client.register_database(REGISTER)
            assert client.batch_result("nope").status == 404
            first = client.explain_batch(
                _batch_body(request_id="http-batch")
            )
            assert first.status == 200
            replay = client.explain_batch(
                _batch_body(request_id="http-batch")
            )
            assert replay.body["cached_result"] is True
            stored = client.batch_result("http-batch")
            assert stored.body["outcomes"] == first.body["outcomes"]


# ---------------------------------------------------------------------------
# chaos over the socket
# ---------------------------------------------------------------------------
CHAOS_SEEDS = range(0, 10)


class TestChaosOverSocket:
    """Seeded fault plans against a *live* server: injected operator /
    cache / compatibility faults must surface as structured degraded
    envelopes, never as hung sockets or dead processes."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_faults_yield_envelopes_not_crashes(self, seed):
        plan = FaultPlan.random(seed, faults=1 + seed % 3)
        with _live_server(workers=2) as (httpd, client):
            client.register_database(REGISTER)
            questions = [
                "(Person.name: Roger)",
                "(Person.name: Hannah)",
                "(Person.name: Zo)",
            ]
            with inject(plan):
                response = client.explain_batch(
                    _batch_body(questions, workers=2)
                )
            # totality: one outcome per question, 200 or 206, never a
            # connection reset
            assert response.status in (200, 206)
            outcomes = response.body["outcomes"]
            assert len(outcomes) == len(questions)
            for outcome in outcomes:
                assert outcome["degradation_level"] in (
                    "full",
                    "partial",
                    "failed",
                )
            # the process survived: liveness green, and a clean batch
            # right after the chaos one still answers in full
            assert client.healthz().status == 200
            clean = client.explain_batch(_batch_body(questions))
            assert clean.status in (200, 206)
            assert all(
                o["degradation_level"] == "full"
                for o in clean.body["outcomes"]
            )


# ---------------------------------------------------------------------------
# subprocess acceptance: kill/resume byte-identity and SIGTERM drain
# ---------------------------------------------------------------------------
KILL_QUESTIONS = [
    "(Person.name: Roger)",
    "(Person.name: Hannah)",
    "(Person.name: Ana)",
    "(Person.name: Zo)",
    "(Person.name: Ofelia)",
    "(Person.name: Milo)",
]


class _ServerProcess:
    """One ``repro.cli serve`` subprocess bound to an ephemeral port."""

    def __init__(self, journal_dir: Path, env_extra=None, extra_args=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env["REPRO_MANUAL_CLOCK"] = "1"
        env.pop("REPRO_JOURNAL_CRASH_AFTER", None)
        env.pop("REPRO_JOURNAL_SIGINT_AFTER", None)
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--workers",
                "4",
                "--journal-dir",
                str(journal_dir),
                *(extra_args or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        assert self.proc.stdout is not None
        first = self.proc.stdout.readline()
        assert "listening on" in first, first
        self.port = int(first.rsplit(":", 1)[1])
        self.client = ServiceClient(port=self.port)
        self.client.wait_ready(30)

    def kill_wait(self) -> int:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=30)
        return self.proc.returncode


def _artifact_dir(tmp_path: Path, name: str) -> Path:
    configured = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    root = Path(configured) if configured else tmp_path
    path = root / name
    path.mkdir(parents=True, exist_ok=True)
    return path


class TestServiceKillResume:
    """The service-level resume proof: a journaled workers=4 batch over
    HTTP, SIGKILLed mid-run by the deterministic crash hook, converges
    after restart to outcomes byte-identical to an uninterrupted run."""

    def test_sigkilled_batch_resumes_byte_identical(self, tmp_path):
        clean_dir = _artifact_dir(tmp_path, "service-clean")
        killed_dir = _artifact_dir(tmp_path, "service-killed")
        body = {
            "request_id": "kill-batch",
            "database": "crime",
            "sql": SQL,
            "why_not": KILL_QUESTIONS,
            "workers": 4,
        }

        # 1. the uninterrupted oracle run
        server = _ServerProcess(clean_dir)
        try:
            assert server.client.register_database(REGISTER).ok
            clean = server.client.explain_batch(body)
            assert clean.status in (200, 206)
            clean_outcomes = clean.body["outcomes"]
            assert len(clean_outcomes) == len(KILL_QUESTIONS)
        finally:
            server.kill_wait()

        # 2. same batch, server SIGKILLed right after the second
        #    journal record is durable (a power cut, not a shutdown)
        server = _ServerProcess(
            killed_dir, env_extra={"REPRO_JOURNAL_CRASH_AFTER": "2"}
        )
        assert server.client.register_database(REGISTER).ok
        with pytest.raises(
            (urllib.request.HTTPError, OSError, ConnectionError)
        ):
            server.client.explain_batch(body)
        assert server.kill_wait() == -signal.SIGKILL
        # the durable prefix survived: manifest + exactly 2 records
        assert (killed_dir / "kill-batch.request.json").exists()
        journal_lines = (
            (killed_dir / "kill-batch.journal.jsonl")
            .read_text()
            .splitlines()
        )
        assert len(journal_lines) == 2
        assert not (killed_dir / "kill-batch.result.json").exists()

        # 3. restart on the same journal dir: recovery resumes the
        #    journal (replaying the durable records) before ready
        server = _ServerProcess(killed_dir)
        try:
            recovered = server.client.batch_result("kill-batch")
            assert recovered.status == 200
            assert recovered.body["replayed"] == 2
            # 4. byte-identical to the uninterrupted run
            assert json.dumps(
                recovered.body["outcomes"], sort_keys=True
            ) == json.dumps(clean_outcomes, sort_keys=True)
        finally:
            server.kill_wait()

    def test_registrations_survive_restart(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        server = _ServerProcess(journal_dir)
        try:
            assert server.client.register_database(REGISTER).ok
        finally:
            server.kill_wait()
        server = _ServerProcess(journal_dir)
        try:
            # no re-registration: the persisted databases.json was
            # reloaded, so explains work immediately after restart
            assert server.client.explain(_explain_body()).status == 200
        finally:
            server.kill_wait()


class TestServiceDrain:
    def test_sigterm_drains_to_exit_zero_with_empty_queue(
        self, tmp_path
    ):
        server = _ServerProcess(tmp_path / "journal")
        assert server.client.register_database(REGISTER).ok
        assert server.client.explain(_explain_body()).status == 200
        server.proc.send_signal(signal.SIGTERM)
        output, _ = server.proc.communicate(timeout=30)
        assert server.proc.returncode == 0, output
        assert "draining: SIGTERM received" in output
        assert "active_requests=0" in output

    def test_serve_rejects_bad_config_with_exit_2(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--quota",
                "not-a-quota",
                "--json",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 2
        document = json.loads(result.stdout)
        assert document["error"]["type"] == "ConfigurationError"
        assert "quota" in document["error"]["message"]


# ---------------------------------------------------------------------------
# storage backends behind the service
# ---------------------------------------------------------------------------
class TestStorageKinds:
    def test_storage_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="storage"):
            ServiceConfig(storage="floppy")
        with pytest.raises(ConfigurationError, match="journal"):
            ServiceConfig(storage="local")
        assert ServiceConfig().resolved_storage == "none"
        assert (
            ServiceConfig(journal_dir=tmp_path / "j").resolved_storage
            == "local"
        )
        assert ServiceConfig(storage="memory").resolved_storage == "memory"
        assert (
            ServiceConfig(
                storage="none", journal_dir=tmp_path / "j"
            ).resolved_storage
            == "none"
        )

    def test_memory_storage_batches_without_touching_disk(self):
        state = ServiceState(ServiceConfig(storage="memory"))
        state.ready.set()
        state.register_database(REGISTER)
        body = _batch_body(request_id="m1", workers=2)
        document, fresh = state.explain_batch(body)
        assert fresh
        again, fresh = state.explain_batch(body)
        assert not fresh  # idempotency via the in-memory result doc
        assert again["outcomes"] == document["outcomes"]
        names = state.backend.list_documents()
        assert "m1.request.json" in names
        assert "m1.result.json" in names

    def test_memory_storage_over_http(self):
        with _live_server(storage="memory") as (httpd, client):
            client.register_database(REGISTER)
            first = client.explain_batch(
                _batch_body(request_id="mem-http")
            )
            assert first.status == 200
            replay = client.explain_batch(
                _batch_body(request_id="mem-http")
            )
            assert replay.body["cached_result"] is True
            ready = client.readyz()
            assert ready.body["storage"]["kind"] == "memory"

    def test_readyz_reports_storage_recovery(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        # a temp file stranded by a crash mid-atomic-write: recovery
        # quarantines it before the service flips ready
        (journal_dir / "junk.json.tmp").write_text("half a doc")
        state = ServiceState(ServiceConfig(journal_dir=journal_dir))
        _ready, document = state.ready_document()
        assert document["storage"]["kind"] == "local"
        assert document["storage_recovery"]["quarantined"] == [
            "junk.json.tmp"
        ]
        assert (journal_dir / "quarantine" / "junk.json.tmp").exists()


# ---------------------------------------------------------------------------
# request timeouts: a stalled client must not hold a worker forever
# ---------------------------------------------------------------------------
class TestRequestTimeout:
    def test_config_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            ServiceConfig(request_timeout_s=0)
        with pytest.raises(ConfigurationError, match="timeout"):
            ServiceConfig(request_timeout_s=-1)
        assert ServiceConfig(request_timeout_s=None).request_timeout_s is None

    def test_stalled_body_gets_408_and_connection_close(self):
        with _live_server(request_timeout_s=0.4) as (httpd, client):
            client.register_database(REGISTER)
            port = httpd.server_address[1]
            with socket.create_connection(("127.0.0.1", port)) as sock:
                sock.settimeout(15)
                # promise 4096 body bytes, deliver 8, then stall: the
                # read blocks until the socket timeout fires
                sock.sendall(
                    b"POST /v1/explain HTTP/1.1\r\n"
                    b"Host: t\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 4096\r\n"
                    b"\r\n"
                    b'{"data":'
                )
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break  # server closed the connection: good
                    chunks.append(chunk)
            response = b"".join(chunks)
            assert b" 408 " in response.splitlines()[0]
            assert b"RequestTimeout" in response
            # no worker was left hung: the server still answers
            assert client.healthz().status == 200
            assert client.explain(_explain_body()).status == 200
            timeouts = client.metrics().body["metrics"]
            assert timeouts["service.timeouts"]["value"] >= 1


# ---------------------------------------------------------------------------
# quota hot-reload: SIGHUP and POST /v1/admin/reload
# ---------------------------------------------------------------------------
class TestQuotaReload:
    def test_admin_reload_swaps_the_spec(self, tmp_path):
        quota_file = tmp_path / "quota.txt"
        quota_file.write_text("1/min:1\n")
        with _live_server(quota_file=quota_file) as (httpd, client):
            client.register_database(REGISTER)
            assert client.explain(_explain_body()).status == 200
            assert client.explain(_explain_body()).status == 429
            quota_file.write_text("100/s:100\n")
            response = client.request("POST", "/v1/admin/reload")
            assert response.status == 200
            assert response.body["reloaded"] is True
            assert response.body["quota"] == "100/s:100"
            # new spec in force, and the exhausted bucket was dropped
            assert client.explain(_explain_body()).status == 200

    def test_malformed_reload_keeps_the_old_spec(self, tmp_path):
        quota_file = tmp_path / "quota.txt"
        quota_file.write_text("1/min:1\n")
        with _live_server(quota_file=quota_file) as (httpd, client):
            client.register_database(REGISTER)
            assert client.explain(_explain_body()).status == 200
            assert client.explain(_explain_body()).status == 429
            quota_file.write_text("not a quota at all\n")
            response = client.request("POST", "/v1/admin/reload")
            assert response.status == 400
            assert response.body["reloaded"] is False
            assert "error" in response.body
            # a bad reload degrades to "nothing changed", never to
            # "quotas off": the old spec still refuses
            assert client.explain(_explain_body()).status == 429
            failed = client.metrics().body["metrics"]
            assert failed["config.reload_failed"]["value"] >= 1

    def test_empty_quota_file_disables_quotas(self, tmp_path):
        quota_file = tmp_path / "quota.txt"
        quota_file.write_text("1/min:1\n")
        with _live_server(quota_file=quota_file) as (httpd, client):
            client.register_database(REGISTER)
            assert client.explain(_explain_body()).status == 200
            assert client.explain(_explain_body()).status == 429
            quota_file.write_text("")
            response = client.request("POST", "/v1/admin/reload")
            assert response.status == 200
            assert response.body["quota"] is None
            assert client.explain(_explain_body()).status == 200

    def test_reload_without_quota_file_is_400(self):
        with _live_server() as (httpd, client):
            response = client.request("POST", "/v1/admin/reload")
            assert response.status == 400
            assert response.body["reloaded"] is False
            assert "no --quota-file" in response.body["reason"]

    @pytest.mark.skipif(
        not hasattr(signal, "SIGHUP"), reason="no SIGHUP on this OS"
    )
    def test_sighup_reloads_the_quota_file(self, tmp_path):
        quota_file = tmp_path / "quota.txt"
        quota_file.write_text("1/min:1\n")
        server = _ServerProcess(
            tmp_path / "journal",
            extra_args=["--quota-file", str(quota_file)],
        )
        try:
            assert server.client.register_database(REGISTER).ok
            assert server.client.explain(_explain_body()).status == 200
            assert server.client.explain(_explain_body()).status == 429
            quota_file.write_text("100/s:100\n")
            server.proc.send_signal(signal.SIGHUP)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                metrics = server.client.metrics().body["metrics"]
                if metrics.get("config.reloads", {}).get("value", 0):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("SIGHUP reload never registered in metrics")
            assert server.client.explain(_explain_body()).status == 200
        finally:
            server.kill_wait()


# ---------------------------------------------------------------------------
# replicated storage behind the service
# ---------------------------------------------------------------------------
class TestReplicatedService:
    def _state(self, **kw):
        kw.setdefault("storage", "memory")
        kw.setdefault("replicas", 3)
        state = ServiceState(ServiceConfig(**kw))
        state.ready.set()
        return state

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            ServiceConfig(replicas=0)
        with pytest.raises(ConfigurationError, match="--replicas > 1"):
            ServiceConfig(write_quorum=2)
        with pytest.raises(ConfigurationError, match="storage"):
            ServiceConfig(replicas=3)  # no backend to replicate
        with pytest.raises(ConfigurationError, match="overlap"):
            ServiceConfig(
                storage="memory",
                replicas=3,
                write_quorum=1,
                read_quorum=1,
            )

    def test_default_quorums_are_resolved(self):
        config = ServiceConfig(storage="memory", replicas=3)
        assert (config.write_quorum, config.read_quorum) == (2, 2)
        config = ServiceConfig(storage="memory", replicas=5)
        assert (config.write_quorum, config.read_quorum) == (3, 3)

    def test_batch_serves_with_one_replica_down(self):
        state = self._state()
        state.register_database(REGISTER)
        state.backend.transports[2].kill()
        document, fresh = state.explain_batch(_batch_body())
        assert fresh
        assert document["outcomes"]
        ready, ready_doc = state.ready_document()
        assert ready  # quorum still satisfied: stay in rotation
        assert ready_doc["status"] == "degraded"
        assert ready_doc["replicas"]["degraded"] == ["2"]

    def test_quorum_loss_flips_readyz(self):
        state = self._state()
        state.backend.transports[1].kill()
        state.backend.transports[2].partition()
        ready, ready_doc = state.ready_document()
        assert not ready
        assert ready_doc["status"] == "quorum-lost"
        assert not ready_doc["replicas"]["quorum_ok"]

    def test_idempotent_retry_through_replicated_journal(self):
        state = self._state()
        state.register_database(REGISTER)
        body = _batch_body(request_id="batch-repl-1")
        first, fresh_first = state.explain_batch(body)
        again, fresh_again = state.explain_batch(body)
        assert fresh_first and not fresh_again
        assert first["request_id"] == again["request_id"]

    def test_unreplicated_readyz_has_no_replica_block(self):
        state = ServiceState(ServiceConfig(storage="memory"))
        state.ready.set()
        _ready, document = state.ready_document()
        assert "replicas" not in document

    def test_live_server_reports_replica_health(self):
        with _live_server(storage="memory", replicas=3) as (
            httpd,
            client,
        ):
            assert client.register_database(REGISTER).ok
            ready = client.readyz()
            assert ready.status == 200
            replicas = ready.body["replicas"]
            assert replicas["n"] == 3
            assert replicas["write_quorum"] == 2
            assert replicas["degraded"] == []
            httpd.state.backend.transports[1].kill()
            degraded = client.readyz()
            assert degraded.status == 200  # quorum holds: stay up
            assert degraded.body["status"] == "degraded"
            assert degraded.body["replicas"]["degraded"] == ["1"]
            batch = client.explain_batch(_batch_body())
            assert batch.status == 200
            httpd.state.backend.transports[2].kill()
            lost = client.readyz()
            assert lost.status == 503
            assert lost.body["status"] == "quorum-lost"
            # restore quorum so teardown's drain can persist state
            httpd.state.backend.transports[1].restart()
            httpd.state.backend.transports[2].restart()


# ---------------------------------------------------------------------------
# client pushback retry (RetryPolicy + Retry-After)
# ---------------------------------------------------------------------------
class _ScriptedClient(ServiceClient):
    """A client whose transport replays a scripted response list."""

    def __init__(self, responses, **kw):
        super().__init__(**kw)
        self.responses = list(responses)
        self.sent = 0

    def _send(self, method, path, body=None, headers=None):
        response = self.responses[
            min(self.sent, len(self.responses) - 1)
        ]
        self.sent += 1
        return response


class TestClientRetry:
    def test_retries_pushback_until_success(self):
        from repro.robustness import RetryPolicy
        from repro.service.client import ServiceResponse

        clock = ManualClock()
        client = _ScriptedClient(
            [
                ServiceResponse(status=429, retry_after_s=2.0),
                ServiceResponse(status=503),
                ServiceResponse(status=200, body={"ok": True}),
            ],
            retry=RetryPolicy(
                max_attempts=5, backoff_ms=100.0, jitter=0.0
            ),
        )
        with use_clock(clock):
            response = client.explain_batch({"why_not": ["(q: x)"]})
        assert response.status == 200
        assert client.sent == 3
        # first wait honours Retry-After (2.0 > 0.1); second falls
        # back to the policy backoff (0.2) -- and no real time passed
        assert clock.monotonic() == pytest.approx(2.2)

    def test_retry_budget_is_bounded(self):
        from repro.robustness import RetryPolicy
        from repro.service.client import ServiceResponse

        client = _ScriptedClient(
            [ServiceResponse(status=429, retry_after_s=0.5)],
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        with use_clock(ManualClock()):
            response = client.healthz()
        assert response.status == 429  # surfaced after the budget
        assert client.sent == 3

    def test_non_pushback_statuses_return_immediately(self):
        from repro.robustness import RetryPolicy
        from repro.service.client import ServiceResponse

        client = _ScriptedClient(
            [ServiceResponse(status=404)],
            retry=RetryPolicy(max_attempts=5),
        )
        response = client.healthz()
        assert response.status == 404
        assert client.sent == 1

    def test_no_policy_means_single_shot(self):
        from repro.service.client import ServiceResponse

        client = _ScriptedClient([ServiceResponse(status=503)])
        assert client.healthz().status == 503
        assert client.sent == 1
