"""Unit tests for the observability subsystem (:mod:`repro.obs`).

Covers the clock injection, the metrics instruments and snapshot
algebra, the span tree lifecycle (nesting, cascade-close, no-op fast
path), and the exporters' round trips -- all on a
:class:`~repro.obs.clock.ManualClock`, so every duration asserted here
is exact, not approximate.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    ManualClock,
    MetricsRegistry,
    SystemClock,
    Tracer,
    current_clock,
    current_tracer,
    merge_snapshots,
    metric_counter,
    metric_observe,
    metrics_snapshot,
    read_trace_jsonl,
    render_trace,
    span,
    to_chrome_trace,
    tracing,
    use_clock,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.trace import NOOP_SPAN


class TestClock:
    def test_manual_clock_advances(self):
        clock = ManualClock()
        assert clock.monotonic() == 0.0
        clock.advance(1.5)
        assert clock.monotonic() == 1.5
        assert clock.perf_counter() == 1.5

    def test_manual_clock_rejects_negative_advance(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-0.1)

    def test_ambient_clock_defaults_to_system(self):
        assert isinstance(current_clock(), SystemClock)

    def test_use_clock_installs_and_restores(self):
        manual = ManualClock(start=5.0)
        with use_clock(manual):
            assert current_clock() is manual
            assert current_clock().monotonic() == 5.0
        assert isinstance(current_clock(), SystemClock)


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.gauge("depth").value == 7

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rows", buckets=(10, 100))
        for value in (1, 10, 11, 1000):
            histogram.observe(value)
        # <=10, <=100, overflow
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == 1022
        assert histogram.mean == pytest.approx(255.5)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=(10, 10))
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=())

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_flat(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("c").observe(3)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        assert snapshot["a"] == {"type": "gauge", "value": 1.5}
        assert snapshot["b"] == {"type": "counter", "value": 2}
        assert snapshot["c"]["count"] == 1
        json.dumps(snapshot)  # JSON-ready

    def test_merge_snapshots(self):
        first = MetricsRegistry()
        first.counter("n").inc(2)
        first.gauge("g").set(1)
        first.histogram("h", buckets=(10,)).observe(5)
        second = MetricsRegistry()
        second.counter("n").inc(3)
        second.gauge("g").set(9)
        second.histogram("h", buckets=(10,)).observe(50)
        merged = merge_snapshots(
            [first.snapshot(), second.snapshot()]
        )
        assert merged["n"]["value"] == 5
        assert merged["g"]["value"] == 9
        assert merged["h"]["count"] == 2
        assert merged["h"]["bucket_counts"] == [1, 1]

    def test_merge_rejects_kind_and_bucket_mismatch(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ConfigurationError):
            merge_snapshots([a.snapshot(), b.snapshot()])
        c = MetricsRegistry()
        c.histogram("h", buckets=(1, 2)).observe(1)
        d = MetricsRegistry()
        d.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ConfigurationError):
            merge_snapshots([c.snapshot(), d.snapshot()])


class TestTracer:
    def test_span_nesting_and_durations(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        outer = tracer.start_span("outer", category="run")
        clock.advance(0.010)
        with tracer.span("inner", category="phase"):
            clock.advance(0.005)
        clock.advance(0.001)
        tracer.end_span(outer)
        spans = {s.name: s for s in tracer.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].duration_ms == pytest.approx(5.0)
        assert spans["outer"].duration_ms == pytest.approx(16.0)

    def test_open_span_has_no_duration(self):
        tracer = Tracer(clock=ManualClock())
        opened = tracer.start_span("open")
        with pytest.raises(ConfigurationError):
            _ = opened.duration_ms

    def test_end_span_cascade_closes_children(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        outer = tracer.start_span("outer")
        tracer.start_span("orphan")
        clock.advance(0.002)
        tracer.end_span(outer)
        assert not tracer.open_spans
        names = {s.name for s in tracer.spans}
        assert names == {"outer", "orphan"}

    def test_end_unknown_span_rejected(self):
        tracer = Tracer(clock=ManualClock())
        finished = tracer.start_span("s")
        tracer.end_span(finished)
        with pytest.raises(ConfigurationError):
            tracer.end_span(finished)

    def test_phase_totals_sum_per_phase(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        for advance in (0.003, 0.007):
            with tracer.span("Init", category="phase", phase="Init"):
                clock.advance(advance)
        totals = tracer.phase_totals_ms()
        assert totals == {"Init": pytest.approx(10.0)}

    def test_ambient_tracer_and_noop_fast_path(self):
        assert current_tracer() is None
        assert span("anything") is NOOP_SPAN
        metric_counter("ignored")  # must not raise
        metric_observe("ignored", 1.0)
        assert metrics_snapshot() is None
        with tracing() as tracer:
            assert current_tracer() is tracer
            with span("visible", category="test"):
                pass
            metric_counter("seen", 2)
            assert metrics_snapshot()["seen"]["value"] == 2
        assert current_tracer() is None
        assert tracer.by_category("test")[0].name == "visible"


class TestExporters:
    def _traced(self):
        clock = ManualClock(start=100.0)
        tracer = Tracer(clock=clock)
        with tracer.span("root", category="run"):
            clock.advance(0.004)
            with tracer.span("child", category="phase", phase="Init"):
                clock.advance(0.006)
        tracer.metrics.counter("cache.hits").inc(3)
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._traced()
        path = write_trace_jsonl(tracer, tmp_path / "t.jsonl")
        spans, metrics = read_trace_jsonl(path)
        assert len(spans) == 2
        root, child = spans
        assert root["start_ms"] == 0.0  # epoch-relative
        assert child["parent"] == root["id"]
        assert child["duration_ms"] == pytest.approx(6.0)
        assert metrics["cache.hits"]["value"] == 3

    def test_export_rejects_open_spans(self, tmp_path):
        tracer = Tracer(clock=ManualClock())
        tracer.start_span("open")
        with pytest.raises(ConfigurationError):
            write_trace_jsonl(tracer, tmp_path / "t.jsonl")

    def test_reader_rejects_malformed_artifacts(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            read_trace_jsonl(path)
        path.write_text('{"kind": "nope"}\n')
        with pytest.raises(ConfigurationError):
            read_trace_jsonl(path)
        # span count mismatch
        path.write_text(
            '{"kind": "header", "format": "repro.obs.trace", '
            '"version": 1, "spans": 2}\n'
            '{"kind": "span", "id": 1, "parent": null, "name": "a", '
            '"category": "c", "start_ms": 0, "duration_ms": 1}\n'
            '{"kind": "metrics", "metrics": {}}\n'
        )
        with pytest.raises(ConfigurationError):
            read_trace_jsonl(path)
        # dangling parent
        path.write_text(
            '{"kind": "header", "format": "repro.obs.trace", '
            '"version": 1, "spans": 1}\n'
            '{"kind": "span", "id": 1, "parent": 99, "name": "a", '
            '"category": "c", "start_ms": 0, "duration_ms": 1}\n'
            '{"kind": "metrics", "metrics": {}}\n'
        )
        with pytest.raises(ConfigurationError):
            read_trace_jsonl(path)

    def test_chrome_trace(self, tmp_path):
        tracer = self._traced()
        document = to_chrome_trace(tracer)
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["root", "child"]
        assert events[0]["ph"] == "X"
        assert events[1]["ts"] == pytest.approx(4000.0)  # microseconds
        assert events[1]["dur"] == pytest.approx(6000.0)
        path = write_chrome_trace(tracer, tmp_path / "chrome.json")
        json.loads(path.read_text())

    def test_render_trace_tree(self):
        tracer = self._traced()
        text = render_trace(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("run:root")
        assert lines[1].startswith("  phase:child")
        assert "phase=Init" in lines[1]
        assert render_trace(Tracer(clock=ManualClock())) == (
            "(empty trace)"
        )

    def test_write_metrics_json(self, tmp_path):
        tracer = self._traced()
        path = write_metrics_json(tracer, tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["cache.hits"]["value"] == 3


class TestBenchArtifacts:
    def test_write_and_read_round_trip(self, tmp_path):
        from repro.bench import read_bench_artifact, write_bench_artifact

        path = write_bench_artifact(
            "smoke", {"a": 1}, tmp_path / "nested"
        )
        assert path.name == "BENCH_smoke.json"
        assert read_bench_artifact(path) == {"a": 1}

    def test_read_rejects_foreign_documents(self, tmp_path):
        from repro.bench import read_bench_artifact

        path = tmp_path / "BENCH_x.json"
        path.write_text('{"whatever": 1}')
        with pytest.raises(ConfigurationError):
            read_bench_artifact(path)
        path.write_text(
            '{"format": "repro.bench", "version": 99, "data": {}}'
        )
        with pytest.raises(ConfigurationError):
            read_bench_artifact(path)
