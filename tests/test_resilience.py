"""Resilience layer: retry policy, circuit breakers, degradation ladder.

The acceptance contract of the resilient ``explain_each``:

* a *transient* fault (fires once) plus ``RetryPolicy(max_attempts=2)``
  yields an outcome identical to the fault-free run -- the retry makes
  the fault invisible except for ``outcome.attempts``;
* a *persistent* fault opens the site's circuit breaker (stopping the
  retry hammering early) and, with the baseline fallback enabled, the
  question still gets a valid Why-Not answer with
  ``degradation_level == "baseline"``;
* all backoff waiting happens on the ambient clock: under a
  :class:`~repro.obs.ManualClock` no test ever sleeps for real.
"""

from __future__ import annotations

import time

import pytest

from repro.core import NedExplain, canonicalize
from repro.errors import (
    ConfigurationError,
    InjectedFaultError,
    ReproError,
    WhyNotQuestionError,
)
from repro.obs import ManualClock, Tracer, tracing, use_clock
from repro.relational import EvaluationCache
from repro.robustness import (
    CircuitBreaker,
    CircuitBreakerBoard,
    DegradationLadder,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    inject,
)
from repro.robustness.breaker import CLOSED, HALF_OPEN, OPEN
from repro.workloads.generator import chain_database, chain_query


def _setup():
    db = chain_database(3, rows_per_relation=12)
    canonical = canonicalize(chain_query(3), db.schema)
    return db, canonical


def _fingerprint(report):
    return (
        tuple(
            (
                repr(a.ctuple),
                a.detailed_pairs,
                a.condensed_labels,
                a.secondary_labels,
                a.no_compatible_data,
                a.answer_not_missing,
            )
            for a in report.answers
        ),
        report.summary(),
    )


QUESTION = "(R0.label: needle)"

_DB, _CANONICAL = _setup()
_ORACLE = (
    NedExplain(_CANONICAL, database=_DB, cache=EvaluationCache())
    .explain_each([QUESTION])[0]
)
_ORACLE_PRINT = _fingerprint(_ORACLE.report)


def _engine():
    return NedExplain(_CANONICAL, database=_DB, cache=EvaluationCache())


# ---------------------------------------------------------------------------
# RetryPolicy units
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_ms": -1.0},
            {"max_backoff_ms": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_injected_faults_are_retryable(self):
        policy = RetryPolicy()
        assert policy.is_retryable(InjectedFaultError("boom", site="s"))

    def test_retryable_attribute_honoured(self):
        policy = RetryPolicy()
        error = ReproError("flaky io")
        assert not policy.is_retryable(error)
        error.retryable = True
        assert policy.is_retryable(error)

    def test_deterministic_errors_not_retryable(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(WhyNotQuestionError("bad question"))

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s(2, key="q") == policy.delay_s(2, key="q")
        # a different question key jitters differently
        assert policy.delay_s(2, key="q") != policy.delay_s(2, key="r")

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(backoff_ms=100.0, multiplier=2.0, jitter=0.0)
        assert policy.delay_s(0) == pytest.approx(0.1)
        assert policy.delay_s(1) == pytest.approx(0.2)
        assert policy.delay_s(2) == pytest.approx(0.4)

    def test_delay_caps_at_max_backoff(self):
        policy = RetryPolicy(
            backoff_ms=100.0, max_backoff_ms=150.0, jitter=0.0
        )
        assert policy.delay_s(5) == pytest.approx(0.15)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(backoff_ms=100.0, jitter=0.25)
        for k in range(8):
            delay = policy.delay_s(k, key="band")
            base = min(100.0 * 2.0 ** k, policy.max_backoff_ms) / 1000.0
            assert 0.75 * base <= delay <= 1.25 * base

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_s(-1)

    def test_wait_advances_manual_clock_without_sleeping(self):
        policy = RetryPolicy(
            backoff_ms=60_000.0, max_backoff_ms=60_000.0, jitter=0.0
        )
        clock = ManualClock()
        started = time.perf_counter()
        with use_clock(clock):
            waited = policy.wait(0, key="q")
        assert waited == pytest.approx(60.0)
        assert clock.monotonic() == pytest.approx(60.0)
        # a minute of backoff must cost (essentially) no real time
        assert time.perf_counter() - started < 5.0


# ---------------------------------------------------------------------------
# CircuitBreaker state machine
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(
            window=8, failure_threshold=0.5, min_calls=4, cooldown_s=30.0
        )
        defaults.update(kwargs)
        return CircuitBreaker("site", clock=clock, **defaults)

    def test_stays_closed_below_min_calls(self):
        breaker = self._breaker(ManualClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_failure_threshold(self):
        breaker = self._breaker(ManualClock())
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_mixed_results_below_threshold_stay_closed(self):
        breaker = self._breaker(ManualClock())
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 2/8 < 0.5

    def test_cooldown_admits_half_open_probe(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(31.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes_and_forgets(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate == 0.0  # window cleared

    def test_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        # the new cooldown starts from the re-open
        assert not breaker.allow()
        clock.advance(31.0)
        assert breaker.allow()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_calls": 0},
            {"min_calls": 99},
            {"cooldown_s": -1.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            self._breaker(ManualClock(), **kwargs)

    def test_trip_and_state_metrics(self):
        tracer = Tracer()
        with tracing(tracer):
            breaker = self._breaker(ManualClock())
            for _ in range(4):
                breaker.record_failure()
        snapshot = tracer.metrics.snapshot()
        assert snapshot["breaker.opens"]["value"] == 1
        assert snapshot["breaker.opens.site"]["value"] == 1
        assert snapshot["breaker.state.site"]["value"] == 2  # open

    def test_board_creates_one_breaker_per_site(self):
        board = CircuitBreakerBoard(clock=ManualClock())
        assert board.breaker("a") is board.breaker("a")
        board.record_failure("a")
        board.record_success("b")
        assert len(board) == 2
        assert board.states() == {"a": "closed", "b": "closed"}


# ---------------------------------------------------------------------------
# FaultPlan snapshot / delta / reuse (satellite)
# ---------------------------------------------------------------------------
class TestFaultPlanReuse:
    def test_snapshot_and_delta(self):
        plan = FaultPlan()
        with inject(plan):
            engine = _engine()
            before = plan.snapshot()
            engine.explain(QUESTION)
            consumed = plan.delta(before)
        assert consumed.get("compatible.find", 0) >= 1
        assert all(count > 0 for count in consumed.values())
        # the snapshot itself is frozen: a later fire must not mutate it
        assert before.get("compatible.find", 0) == 0

    def test_reused_plan_fires_identically(self):
        """Reusing one plan object across inject blocks used to leak
        call counts, silently disabling every spec the second time."""
        plan = FaultPlan([FaultSpec("compatible.find", at_call=0)])
        for _ in range(3):
            with inject(plan):
                with pytest.raises(InjectedFaultError):
                    _engine().explain(QUESTION)
            assert len(plan.fired) == 1

    def test_fresh_false_continues_the_schedule(self):
        plan = FaultPlan([FaultSpec("compatible.find", at_call=0)])
        with inject(plan):
            with pytest.raises(InjectedFaultError):
                _engine().explain(QUESTION)
        with inject(plan, fresh=False):
            _engine().explain(QUESTION)  # spec already consumed
        assert len(plan.fired) == 1


# ---------------------------------------------------------------------------
# Acceptance: transient fault + retry == fault-free run
# ---------------------------------------------------------------------------
class TestRetriedExplain:
    def test_transient_fault_retried_to_identical_report(self):
        plan = FaultPlan([FaultSpec("compatible.find", at_call=0)])
        clock = ManualClock()
        with use_clock(clock), inject(plan):
            (outcome,) = _engine().explain_each(
                [QUESTION], retry=RetryPolicy(max_attempts=2)
            )
        assert plan.fired, "the fault must actually fire"
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.degradation_level == "full"
        assert _fingerprint(outcome.report) == _ORACLE_PRINT
        assert clock.monotonic() > 0.0  # the backoff ran on the clock

    def test_without_retry_the_same_fault_fails(self):
        plan = FaultPlan([FaultSpec("compatible.find", at_call=0)])
        with inject(plan):
            (outcome,) = _engine().explain_each([QUESTION])
        assert not outcome.ok
        assert outcome.attempts == 1
        assert outcome.degradation_level == "failed"
        assert outcome.failure.error_class == "InjectedFaultError"

    def test_non_retryable_error_is_not_retried(self):
        with use_clock(ManualClock()):
            (outcome,) = _engine().explain_each(
                ["(R0.nope: x)"], retry=RetryPolicy(max_attempts=5)
            )
        assert not outcome.ok
        assert outcome.attempts == 1  # malformed question: no retry

    def test_retries_surface_in_metrics(self):
        plan = FaultPlan([FaultSpec("cache.lookup", at_call=0)])
        tracer = Tracer()
        with tracing(tracer), use_clock(ManualClock()), inject(plan):
            (outcome,) = _engine().explain_each(
                [QUESTION], retry=RetryPolicy(max_attempts=3)
            )
        assert outcome.ok and outcome.attempts == 2
        snapshot = tracer.metrics.snapshot()
        assert snapshot["resilience.retries"]["value"] == 1
        assert snapshot["resilience.retries.cache.lookup"]["value"] == 1

    def test_config_retry_is_the_default_policy(self):
        from repro.core import NedExplainConfig

        plan = FaultPlan([FaultSpec("compatible.find", at_call=0)])
        engine = NedExplain(
            _CANONICAL,
            database=_DB,
            cache=EvaluationCache(),
            config=NedExplainConfig(retry=RetryPolicy(max_attempts=2)),
        )
        with use_clock(ManualClock()), inject(plan):
            (outcome,) = engine.explain_each([QUESTION])
        assert outcome.ok and outcome.attempts == 2


# ---------------------------------------------------------------------------
# Acceptance: persistent fault -> breaker opens -> baseline fallback
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def _persistent_plan(self, site="compatible.find", calls=64):
        return FaultPlan(
            [FaultSpec(site, at_call=i) for i in range(calls)]
        )

    def test_persistent_fault_opens_breaker_and_falls_to_baseline(self):
        clock = ManualClock()
        board = CircuitBreakerBoard(clock=clock)
        with use_clock(clock), inject(self._persistent_plan()):
            (outcome,) = _engine().explain_each(
                [QUESTION],
                retry=RetryPolicy(max_attempts=8),
                breakers=board,
                fallback_baseline=True,
            )
        # the breaker opened at min_calls=4 consecutive failures,
        # cutting the 8-attempt budget short
        assert board.states()["compatible.find"] == "open"
        assert outcome.attempts == 4
        # ... and the ladder still produced a valid baseline answer
        assert outcome.ok
        assert outcome.degradation_level == "baseline"
        assert outcome.baseline is not None
        assert outcome.baseline.answers  # a real frontier answer
        assert outcome.report is None
        # the triggering failure stays on record
        assert outcome.failure is not None
        assert outcome.failure.error_class == "InjectedFaultError"

    def test_baseline_dodges_a_failing_cache_site(self):
        """The baseline rung runs uncached, so a persistently failing
        cache site cannot take the fallback down with it."""
        clock = ManualClock()
        with use_clock(clock), inject(
            self._persistent_plan(site="cache.lookup")
        ):
            (outcome,) = _engine().explain_each(
                [QUESTION],
                retry=RetryPolicy(max_attempts=3),
                fallback_baseline=True,
            )
        assert outcome.ok
        assert outcome.degradation_level == "baseline"
        assert outcome.baseline is not None

    def test_fallback_metrics(self):
        tracer = Tracer()
        with tracing(tracer), use_clock(ManualClock()), inject(
            self._persistent_plan()
        ):
            (outcome,) = _engine().explain_each(
                [QUESTION],
                retry=RetryPolicy(max_attempts=2),
                fallback_baseline=True,
            )
        assert outcome.degradation_level == "baseline"
        snapshot = tracer.metrics.snapshot()
        assert snapshot["resilience.fallbacks.baseline"]["value"] == 1

    def test_unsupported_query_drops_to_failed(self, running_example):
        """Aggregation queries have no baseline rung (the paper's
        "n.a." rows): the ladder records a failed outcome instead."""
        db, canonical = running_example
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        plan = FaultPlan(
            [FaultSpec("compatible.find", at_call=i) for i in range(64)]
        )
        with use_clock(ManualClock()), inject(plan):
            (outcome,) = engine.explain_each(
                ["((A.name: Homer, ap: $x), $x > 25)"],
                retry=RetryPolicy(max_attempts=2),
                fallback_baseline=True,
            )
        assert not outcome.ok
        assert outcome.degradation_level == "failed"
        assert outcome.baseline is None

    def test_ladder_for_engine_answers_directly(self):
        ladder = DegradationLadder.for_engine(_engine())
        report = ladder.baseline_answer(QUESTION)
        assert report is not None
        assert report.answers

    def test_breaker_recovery_closes_after_success(self):
        """A transient burst opens the breaker; once the cooldown
        passes, the half-open probe succeeds and closes it again."""
        clock = ManualClock()
        board = CircuitBreakerBoard(clock=clock, cooldown_s=5.0)
        burst = FaultPlan(
            [FaultSpec("compatible.find", at_call=i) for i in range(4)]
        )
        with use_clock(clock), inject(burst):
            (first,) = _engine().explain_each(
                [QUESTION],
                retry=RetryPolicy(max_attempts=8),
                breakers=board,
            )
        assert not first.ok
        assert board.states()["compatible.find"] == "open"
        clock.advance(6.0)
        # the fault burst is over: the next question probes and heals
        with use_clock(clock):
            (second,) = _engine().explain_each(
                [QUESTION],
                retry=RetryPolicy(max_attempts=2),
                breakers=board,
            )
        assert second.ok
        assert _fingerprint(second.report) == _ORACLE_PRINT


# ---------------------------------------------------------------------------
# Outcome serialization carries the resilience fields
# ---------------------------------------------------------------------------
class TestOutcomeSerialization:
    def test_retried_outcome_to_dict(self):
        plan = FaultPlan([FaultSpec("compatible.find", at_call=0)])
        with use_clock(ManualClock()), inject(plan):
            (outcome,) = _engine().explain_each(
                [QUESTION], retry=RetryPolicy(max_attempts=2)
            )
        data = outcome.to_dict()
        assert data["attempts"] == 2
        assert data["degradation_level"] == "full"
        assert data["baseline"] is None

    def test_baseline_outcome_to_dict(self):
        plan = FaultPlan(
            [FaultSpec("compatible.find", at_call=i) for i in range(64)]
        )
        with use_clock(ManualClock()), inject(plan):
            (outcome,) = _engine().explain_each(
                [QUESTION],
                retry=RetryPolicy(max_attempts=2),
                fallback_baseline=True,
            )
        data = outcome.to_dict()
        assert data["ok"] is True
        assert data["report"] is None
        assert data["degradation_level"] == "baseline"
        assert data["baseline"]["answers"]
        assert data["failure"]["attempts"] == 2

    def test_failure_describe_mentions_attempts(self):
        plan = FaultPlan(
            [FaultSpec("compatible.find", at_call=i) for i in range(64)]
        )
        with use_clock(ManualClock()), inject(plan):
            (outcome,) = _engine().explain_each(
                [QUESTION], retry=RetryPolicy(max_attempts=3)
            )
        assert "attempts=3" in outcome.failure.describe()
