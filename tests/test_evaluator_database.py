"""Unit tests for the evaluator (with lineage) and the storage engine."""

import pytest

from repro.errors import (
    EvaluationError,
    IntegrityError,
    SchemaError,
    UnknownRelationError,
)
from repro.relational import (
    Database,
    Project,
    RelationLeaf,
    attr_cmp,
    evaluate,
    evaluate_query,
    resolve_aliases,
    result_contains,
)
from repro.relational.lineage import (
    base_lineage,
    descends_from,
    direct_lineage,
    format_output,
    is_successor,
    lineage_within,
    successors_in,
)


# ---------------------------------------------------------------------------
# Evaluator on the running example
# ---------------------------------------------------------------------------
class TestEvaluatorRunningExample:
    def test_final_result(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        assert result.result_values() == [
            {"A.name": "Sophocles", "ap": 49.0}
        ]

    def test_q2_intermediate_output(self, running_example):
        """Q2's output is {t4t7t2, t4t8t1, t5t9t3} (Sec. 1)."""
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        join_top = canonical.node("m1")
        provs = sorted(
            t.how_provenance() for t in result.output(join_top)
        )
        assert provs == [
            "A:a1*AB:1*B:b2",
            "A:a1*AB:2*B:b1",
            "A:a2*AB:3*B:b3",
        ]

    def test_selection_kills_homer(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        select = canonical.node("m2")
        survivors = {t["A.name"] for t in result.output(select)}
        assert survivors == {"Sophocles"}

    def test_flat_input_matches_children(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        select = canonical.node("m2")
        join_top = canonical.node("m1")
        assert result.flat_input(select) == result.output(join_top)

    def test_unevaluated_node_raises(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        with pytest.raises(EvaluationError):
            result.output(RelationLeaf(db.table("A").schema.renamed("Z")))

    def test_missing_relation_raises(self, running_example_db):
        foreign = RelationLeaf(
            running_example_db.table("A").schema.renamed("Missing")
        )
        with pytest.raises(EvaluationError):
            evaluate(
                Project(foreign, ["Missing.name"]),
                running_example_db.instance(),
            )

    def test_resolve_aliases_defaults(self, running_example, running_example_db):
        _, canonical = running_example
        mapping = resolve_aliases(
            canonical.root, running_example_db.instance()
        )
        assert mapping == {"A": "A", "AB": "AB", "B": "B"}

    def test_resolve_aliases_unknown(self, running_example_db):
        foreign = RelationLeaf(
            running_example_db.table("A").schema.renamed("Zz")
        )
        with pytest.raises(UnknownRelationError):
            resolve_aliases(foreign, running_example_db.instance())

    def test_result_contains(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        assert result_contains(result.result, {"A.name": "Sophocles"})
        assert not result_contains(result.result, {"A.name": "Homer"})


# ---------------------------------------------------------------------------
# Lineage helpers
# ---------------------------------------------------------------------------
class TestLineageHelpers:
    def test_direct_lineage(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        join_low = canonical.node("m0")
        out = result.output(join_low)
        for t in out:
            assert len(direct_lineage(t)) == 2

    def test_direct_lineage_of_base_tuple_is_itself(self, running_example_db):
        t = running_example_db.table("A").rows[0]
        assert direct_lineage(t) == frozenset({t})

    def test_is_successor_and_successors_in(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        homer = db.table("A").by_tid("A:a1")
        join_low = canonical.node("m0")
        succ = successors_in(result.output(join_low), homer)
        assert len(succ) == 2
        assert all(is_successor(s, homer) for s in succ)

    def test_descends_from(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        top_join = canonical.node("m1")
        assert any(
            descends_from(t, "A:a1") for t in result.output(top_join)
        )

    def test_lineage_within(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        (t, *_) = result.output(canonical.node("m0"))
        assert lineage_within(t, t.lineage | {"extra"})
        assert not lineage_within(t, frozenset())

    def test_base_lineage(self, running_example_db):
        t = running_example_db.table("A").rows[0]
        assert base_lineage(t) == frozenset({"A:a1"})

    def test_format_output(self, running_example):
        db, canonical = running_example
        result = evaluate_query(canonical.root, db.instance())
        text = format_output(result.output(canonical.node("m0")))
        assert "A:a1" in text
        assert format_output([]) == "(empty)"


# ---------------------------------------------------------------------------
# Database engine
# ---------------------------------------------------------------------------
class TestDatabase:
    def test_create_and_insert(self):
        db = Database()
        db.create_table("T", ["id", "v"], key="id")
        row = db.insert("T", id=1, v="a")
        assert row.tid == "T:1"
        assert db.size() == 1

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("T", ["id"])
        with pytest.raises(SchemaError):
            db.create_table("T", ["id"])

    def test_key_uniqueness(self):
        db = Database()
        db.create_table("T", ["id"], key="id")
        db.insert("T", id=1)
        with pytest.raises(IntegrityError):
            db.insert("T", id=1)

    def test_null_key_rejected(self):
        db = Database()
        db.create_table("T", ["id", "v"], key="id")
        with pytest.raises(IntegrityError):
            db.insert("T", v="x")

    def test_unknown_attribute_rejected(self):
        db = Database()
        db.create_table("T", ["id"])
        with pytest.raises(SchemaError):
            db.insert("T", nope=1)

    def test_auto_ids_without_key(self):
        db = Database()
        db.create_table("T", ["v"])
        r1 = db.insert("T", v="a")
        r2 = db.insert("T", v="b")
        assert (r1.tid, r2.tid) == ("T:1", "T:2")

    def test_missing_attrs_become_null(self):
        db = Database()
        db.create_table("T", ["id", "v"], key="id")
        row = db.insert("T", id=1)
        assert row["T.v"] is None

    def test_select_ids_eq_uses_index(self):
        db = Database()
        table = db.create_table("T", ["id", "v"], key="id")
        db.insert("T", id=1, v="a")
        db.insert("T", id=2, v="b")
        db.insert("T", id=3, v="a")
        assert sorted(table.select_ids_eq("v", "a")) == ["T:1", "T:3"]

    def test_select_ids_multiple_equalities(self):
        db = Database()
        table = db.create_table("T", ["id", "v", "w"], key="id")
        db.insert("T", id=1, v="a", w=1)
        db.insert("T", id=2, v="a", w=2)
        assert table.select_ids({"v": "a", "w": 2}) == ["T:2"]

    def test_select_ids_with_condition(self):
        db = Database()
        table = db.create_table("T", ["id", "v"], key="id")
        db.insert("T", id=1, v=5)
        db.insert("T", id=2, v=15)
        ids = table.select_ids(condition=attr_cmp("T.v", ">", 10))
        assert ids == ["T:2"]

    def test_scan(self):
        db = Database()
        table = db.create_table("T", ["id", "v"], key="id")
        db.insert("T", id=1, v=5)
        assert len(table.scan()) == 1
        assert table.scan(attr_cmp("T.v", ">", 10)) == []

    def test_index_on_unknown_attr_rejected(self):
        db = Database()
        table = db.create_table("T", ["id"])
        with pytest.raises(SchemaError):
            table.create_index("zz")

    def test_by_tid(self):
        db = Database()
        table = db.create_table("T", ["id"], key="id")
        db.insert("T", id=7)
        assert table.by_tid("T:7")["T.id"] == 7
        with pytest.raises(UnknownRelationError):
            table.by_tid("T:8")

    def test_insert_rows_bulk(self):
        db = Database()
        db.create_table("T", ["id"], key="id")
        inserted = db.insert_rows("T", [{"id": 1}, {"id": 2}])
        assert len(inserted) == 2

    def test_instance_view(self, tiny_db):
        instance = tiny_db.instance()
        assert instance.size() == 5
        assert len(instance.relation("R")) == 3

    def test_input_instance_self_join(self, tiny_db):
        instance = tiny_db.input_instance({"R1": "R", "R2": "R"})
        assert set(instance.relation_names()) == {"R1", "R2"}
        assert len(instance.relation("R1")) == 3

    def test_unknown_table(self, tiny_db):
        with pytest.raises(UnknownRelationError):
            tiny_db.table("Nope")
        assert "R" in tiny_db and "Nope" not in tiny_db
