"""Unit tests for unrenaming (Def. 2.7) and compatibility (Def. 2.8)."""

import pytest

from repro.core import (
    CTuple,
    Predicate,
    find_compatibles,
    tuple_matches_ctuple,
    unrename_ctuple,
    unrename_predicate,
)
from repro.core.compatibility import CompatibleFinder
from repro.relational import Var, base_tuple, var_cmp
from repro.workloads import get_canonical, get_database


# ---------------------------------------------------------------------------
# Unrenaming
# ---------------------------------------------------------------------------
class TestUnrename:
    def test_untouched_attributes_pass_through(self, running_example):
        _db, canonical = running_example
        tc = CTuple({"A.name": "Homer"})
        (result,) = unrename_ctuple(canonical.root, tc)
        assert result == tc

    def test_aggregated_attribute_passes_through(self, running_example):
        _db, canonical = running_example
        tc = CTuple({"ap": Var("x")}, var_cmp("x", ">", 25))
        (result,) = unrename_ctuple(canonical.root, tc)
        assert result.type == frozenset({"ap"})

    def test_join_attribute_expands_to_both_origins(self, running_example):
        """Ex. 2.2: a renamed attribute unrenames to *both* origins."""
        _db, canonical = running_example
        tc = CTuple({"A.name": "Homer", "aid": "a1"})
        (result,) = unrename_ctuple(canonical.root, tc)
        assert result.type == frozenset(
            {"A.name", "A.aid", "AB.aid"}
        )
        assert result.constants()["A.aid"] == "a1"
        assert result.constants()["AB.aid"] == "a1"

    def test_union_splits_into_disjunction(self):
        canonical = get_canonical("Q12")
        tc = CTuple({"name": "JOHN"})
        parts = unrename_ctuple(canonical.root, tc)
        types = {frozenset(p.type) for p in parts}
        assert types == {
            frozenset({"Co.lastname"}),
            frozenset({"SPO.sponsorln"}),
        }

    def test_predicate_unrenames_each_disjunct(self, running_example):
        _db, canonical = running_example
        predicate = Predicate.of(
            CTuple({"A.name": "Homer"}), CTuple({"A.name": "Euripides"})
        )
        parts = unrename_predicate(canonical.root, predicate)
        assert len(parts) == 2

    def test_chained_renamed_attribute(self):
        """Gov4's sponsorId unrenames through the ES-SPO join."""
        canonical = get_canonical("Q7")
        tc = CTuple({"sponsorId": 467})
        (result,) = unrename_ctuple(canonical.root, tc)
        assert result.constants() == {
            "ES.sponsor": 467,
            "SPO.id": 467,
        }

    def test_deduplicates_identical_branches(self, running_example):
        _db, canonical = running_example
        predicate = Predicate.of(
            CTuple({"A.name": "Homer"}), CTuple({"A.name": "Homer"})
        )
        assert len(unrename_predicate(canonical.root, predicate)) == 1


# ---------------------------------------------------------------------------
# Compatibility of single tuples (Def. 2.8)
# ---------------------------------------------------------------------------
class TestTupleMatchesCTuple:
    def test_constant_match(self):
        t = base_tuple("A", "t4", name="Homer", dob=-800)
        assert tuple_matches_ctuple(t, CTuple({"A.name": "Homer"}))
        assert not tuple_matches_ctuple(t, CTuple({"A.name": "Zeus"}))

    def test_requires_shared_attributes(self):
        t = base_tuple("B", "t1", title="Odyssey")
        assert not tuple_matches_ctuple(t, CTuple({"A.name": "Homer"}))

    def test_variable_binding_checked_against_condition(self):
        t = base_tuple("A", "t1", dob=-800)
        tc = CTuple({"A.dob": Var("x")}, var_cmp("x", ">", -500))
        assert not tuple_matches_ctuple(t, tc)
        t2 = base_tuple("A", "t2", dob=-400)
        assert tuple_matches_ctuple(t2, tc)

    def test_same_variable_in_two_attributes_must_agree(self):
        tc = CTuple({"A.x": Var("v"), "A.y": Var("v")})
        assert tuple_matches_ctuple(
            base_tuple("A", "t1", x=1, y=1), tc
        )
        assert not tuple_matches_ctuple(
            base_tuple("A", "t2", x=1, y=2), tc
        )

    def test_free_variables_stay_satisfiable(self):
        """Ex. 2.3: t4 is compatible with ((Homer, x1), x1 > 25)."""
        t4 = base_tuple("A", "t4", name="Homer", dob=-800)
        tc = CTuple(
            {"A.name": "Homer", "ap": Var("x1")}, var_cmp("x1", ">", 25)
        )
        assert tuple_matches_ctuple(t4, tc)


# ---------------------------------------------------------------------------
# Dir / InDir computation
# ---------------------------------------------------------------------------
class TestCompatibleFinder:
    def test_running_example_dir_and_indir(self, running_example):
        """Ex. 2.3 / 2.4: Dir = {t4}, InDir = I_AB u I_B."""
        db, canonical = running_example
        instance = db.input_instance(canonical.aliases)
        tc = CTuple(
            {"A.name": "Homer", "ap": Var("x1")}, var_cmp("x1", ">", 25)
        )
        sets = find_compatibles(tc, instance)
        assert sets.dir_tids == frozenset({"A:a1"})
        assert sets.direct_aliases == frozenset({"A"})
        assert sets.indirect_aliases == frozenset({"AB", "B"})
        assert len(sets.indir_tids) == 6
        assert sets.valid_tids == sets.dir_tids | sets.indir_tids
        assert not sets.is_empty

    def test_co_occurrence_required_per_relation(self, running_example):
        """Pairs referencing one relation must co-occur in one tuple
        (Sec. 3.1): Homer with Sophocles' dob matches nothing."""
        db, canonical = running_example
        instance = db.input_instance(canonical.aliases)
        tc = CTuple({"A.name": "Homer", "A.dob": -400})
        sets = find_compatibles(tc, instance)
        assert sets.is_empty

    def test_multi_relation_direct_sets(self, running_example):
        db, canonical = running_example
        instance = db.input_instance(canonical.aliases)
        tc = CTuple({"A.name": "Homer", "B.price": 49})
        sets = find_compatibles(tc, instance)
        assert sets.dir_tids == frozenset({"A:a1", "B:b3"})
        assert sets.direct_aliases == frozenset({"A", "B"})
        # non-compatible tuples of direct relations are NOT valid
        assert "B:b1" not in sets.valid_tids
        assert "A:a2" not in sets.valid_tids

    def test_constrained_alias_without_hits(self, running_example):
        db, canonical = running_example
        instance = db.input_instance(canonical.aliases)
        sets = find_compatibles(CTuple({"A.name": "Zeus"}), instance)
        assert sets.is_empty
        assert sets.constrained_aliases == frozenset({"A"})
        # by the letter of Def. 2.8, A then types no Dir tuple, so all
        # of A lands in InDir
        assert sets.indirect_aliases == frozenset({"A", "AB", "B"})

    def test_database_fast_path_equals_scan(self):
        db = get_database("crime")
        canonical = get_canonical("Q1")
        instance = db.input_instance(canonical.aliases)
        tc = CTuple({"Person.name": "Hank", "Crime.type": "Car theft"})
        scanned = CompatibleFinder(instance).find(tc)
        indexed = CompatibleFinder(
            instance, db, canonical.aliases
        ).find(tc)
        assert scanned.dir_tids == indexed.dir_tids
        assert scanned.indirect_aliases == indexed.indirect_aliases

    def test_fast_path_self_join_aliases(self):
        db = get_database("crime")
        canonical = get_canonical("Q3")
        instance = db.input_instance(canonical.aliases)
        tc = CTuple({"C2.type": "Kidnapping"})
        sets = CompatibleFinder(instance, db, canonical.aliases).find(tc)
        # compatibles live only in the C2 alias, with C2-tagged tids
        assert sets.direct_aliases == frozenset({"C2"})
        assert all(tid.startswith("C2:") for tid in sets.dir_tids)
        assert len(sets.dir_tids) == 3

    def test_direct_tuples_ordering(self, running_example):
        db, canonical = running_example
        instance = db.input_instance(canonical.aliases)
        tc = CTuple({"A.name": "Homer", "B.price": 49})
        sets = find_compatibles(tc, instance)
        tids = [t.tid for t in sets.direct_tuples()]
        assert tids == ["A:a1", "B:b3"]
