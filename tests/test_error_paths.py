"""Error-path coverage: SQL positions, malformed CSV/catalogs, CLI codes.

The robustness contract at the edges of the library:

* the SQL frontend reports *where* the input broke
  (:attr:`~repro.errors.SqlSyntaxError.position`);
* :func:`~repro.relational.csv_io.load_database` wraps every stdlib
  failure mode (bad JSON, malformed catalog entries, bad row arity,
  malformed CSV) in :class:`~repro.errors.SchemaError` with file/line
  context -- a corrupt data directory never leaks a ``KeyError`` or
  ``JSONDecodeError`` traceback;
* the CLI exits 0 on success, 2 on a fatal :class:`ReproError`, and 3
  when the run completed but degraded (batch failures / partial
  budget-limited answers).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_DEGRADED, EXIT_ERROR, EXIT_OK, main
from repro.errors import ReproError, SchemaError, SqlSyntaxError
from repro.relational import Database
from repro.relational.csv_io import load_database, save_database
from repro.relational.sql import sql_to_canonical


@pytest.fixture()
def schema_db():
    db = Database()
    db.create_table("A", ["aid", "name", "dob"], key="aid")
    db.insert("A", aid="a1", name="Homer", dob=-800)
    db.insert("A", aid="a2", name="Sophocles", dob=-400)
    return db


# ---------------------------------------------------------------------------
# SqlSyntaxError positions
# ---------------------------------------------------------------------------
class TestSqlPositions:
    @pytest.mark.parametrize(
        "sql, offset",
        [
            ("SELEKT A.name FROM A", 0),
            ("SELECT A.name FORM A", 14),
            ("SELECT A.name FROM A WHERE", 26),
            ("SELECT @ FROM A", 7),
        ],
    )
    def test_position_points_at_the_break(self, schema_db, sql, offset):
        with pytest.raises(SqlSyntaxError) as info:
            sql_to_canonical(sql, schema_db.schema)
        assert info.value.position == offset
        assert f"(at offset {offset})" in str(info.value)

    def test_sql_errors_are_repro_errors(self, schema_db):
        with pytest.raises(ReproError):
            sql_to_canonical("not sql at all", schema_db.schema)


# ---------------------------------------------------------------------------
# load_database: malformed catalogs and CSVs
# ---------------------------------------------------------------------------
class TestLoadDatabaseErrors:
    def _write_catalog(self, path, payload):
        path.mkdir(parents=True, exist_ok=True)
        target = path / "_schema.json"
        if isinstance(payload, str):
            target.write_text(payload)
        else:
            target.write_text(json.dumps(payload))
        return path

    def test_invalid_json_catalog(self, tmp_path):
        self._write_catalog(tmp_path / "db", "{not json")
        with pytest.raises(SchemaError) as info:
            load_database(tmp_path / "db")
        message = str(info.value)
        assert "_schema.json" in message
        assert "line 1" in message  # JSONDecodeError context preserved

    def test_catalog_must_be_object_with_tables(self, tmp_path):
        self._write_catalog(tmp_path / "db", ["not", "an", "object"])
        with pytest.raises(SchemaError) as info:
            load_database(tmp_path / "db")
        assert "'tables'" in str(info.value)

    def test_catalog_entry_must_be_object(self, tmp_path):
        self._write_catalog(
            tmp_path / "db", {"name": "x", "tables": ["oops"]}
        )
        with pytest.raises(SchemaError) as info:
            load_database(tmp_path / "db")
        assert "tables[0]" in str(info.value)

    def test_catalog_entry_missing_field(self, tmp_path):
        self._write_catalog(
            tmp_path / "db",
            {"name": "x", "tables": [{"attributes": ["id"]}]},
        )
        with pytest.raises(SchemaError) as info:
            load_database(tmp_path / "db")
        message = str(info.value)
        assert "tables[0]" in message and "'name'" in message

    def test_row_arity_mismatch_reports_file_and_line(self, tmp_path):
        directory = self._write_catalog(
            tmp_path / "db",
            {
                "name": "x",
                "tables": [
                    {"name": "T", "attributes": ["id", "v"], "key": None}
                ],
            },
        )
        (directory / "T.csv").write_text("id,v\n1,a\n2,b,EXTRA\n")
        with pytest.raises(SchemaError) as info:
            load_database(directory)
        message = str(info.value)
        assert "T.csv:3" in message
        assert "expected 2 fields, got 3" in message

    def test_unknown_columns_rejected(self, tmp_path):
        directory = self._write_catalog(
            tmp_path / "db",
            {
                "name": "x",
                "tables": [
                    {"name": "T", "attributes": ["id"], "key": None}
                ],
            },
        )
        (directory / "T.csv").write_text("id,ghost\n1,boo\n")
        with pytest.raises(SchemaError) as info:
            load_database(directory)
        assert "ghost" in str(info.value)

    def test_malformed_csv_quoting(self, tmp_path):
        directory = tmp_path / "db"
        directory.mkdir()
        (directory / "T.csv").write_text('id,v\n1,"unclosed\nnext,row\n')
        # csv.Error (unterminated quote mid-stream) must surface as
        # SchemaError, never a bare stdlib exception
        try:
            load_database(directory)
        except SchemaError:
            pass

    def test_duplicate_key_reports_line(self, tmp_path):
        directory = self._write_catalog(
            tmp_path / "db",
            {
                "name": "x",
                "tables": [
                    {"name": "T", "attributes": ["id", "v"], "key": "id"}
                ],
            },
        )
        (directory / "T.csv").write_text("id,v\n1,a\n1,b\n")
        with pytest.raises(SchemaError) as info:
            load_database(directory)
        assert "T.csv:3" in str(info.value)

    def test_all_load_errors_are_repro_errors(self, tmp_path):
        """The one-except contract: nothing below ReproError leaks."""
        bad_payloads = [
            "{broken",
            {"tables": "nope"},
            {"tables": [{"name": "T"}]},
            {"tables": [None]},
        ]
        for index, payload in enumerate(bad_payloads):
            directory = self._write_catalog(
                tmp_path / f"db{index}", payload
            )
            with pytest.raises(ReproError):
                load_database(directory)


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------
class TestCliExitCodes:
    @pytest.fixture()
    def data_dir(self, schema_db, tmp_path):
        save_database(schema_db, tmp_path / "db")
        return str(tmp_path / "db")

    SQL = "SELECT A.name FROM A WHERE A.dob > -800"

    def test_success_exits_zero(self, data_dir, capsys):
        code = main(
            [
                "explain",
                "--data", data_dir,
                "--sql", self.SQL,
                "--why-not", "(A.name: Homer)",
            ]
        )
        assert code == EXIT_OK
        assert "NedExplain" in capsys.readouterr().out

    def test_fatal_error_exits_two(self, tmp_path, capsys):
        code = main(
            [
                "explain",
                "--data", str(tmp_path / "missing"),
                "--sql", self.SQL,
                "--why-not", "(A.name: Homer)",
            ]
        )
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_sql_syntax_error_exits_two(self, data_dir, capsys):
        code = main(
            [
                "explain",
                "--data", data_dir,
                "--sql", "SELEKT oops",
                "--why-not", "(A.name: Homer)",
            ]
        )
        assert code == EXIT_ERROR
        assert "offset" in capsys.readouterr().err

    def test_degraded_budget_exits_three(self, data_dir, capsys):
        code = main(
            [
                "explain",
                "--data", data_dir,
                "--sql", self.SQL,
                "--why-not", "(A.name: Homer)",
                "--max-comparisons", "1",
            ]
        )
        assert code == EXIT_DEGRADED
        assert "PARTIAL RESULT" in capsys.readouterr().out

    def test_batch_isolates_bad_question(self, data_dir, capsys):
        """Satellite fix: a failing question must not drop the answers
        of the remaining questions."""
        code = main(
            [
                "explain",
                "--data", data_dir,
                "--sql", self.SQL,
                "--why-not", "(A.name: Homer)",
                "--why-not", "(Nope.x: 1)",
                "--why-not", "(A.name: Vergil)",
            ]
        )
        assert code == EXIT_DEGRADED
        out = capsys.readouterr().out
        # all three questions got an outcome, in order
        assert out.index("(A.name: Homer)") < out.index("(Nope.x: 1)")
        assert out.index("(Nope.x: 1)") < out.index("(A.name: Vergil)")
        assert "FAILED: WhyNotQuestionError" in out
        assert "batch: 3 question(s)" in out

    def test_batch_all_good_exits_zero(self, data_dir, capsys):
        code = main(
            [
                "explain",
                "--data", data_dir,
                "--sql", self.SQL,
                "--why-not", "(A.name: Homer)",
                "--why-not", "(A.name: Vergil)",
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "batch: 2 question(s)" in out

    def test_bad_budget_flag_exits_two(self, data_dir, capsys):
        code = main(
            [
                "explain",
                "--data", data_dir,
                "--sql", self.SQL,
                "--why-not", "(A.name: Homer)",
                "--timeout", "-1",
            ]
        )
        assert code == EXIT_ERROR
        assert "must be positive" in capsys.readouterr().err
