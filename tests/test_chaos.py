"""Chaos suite: seeded fault plans against the batched explain path.

For 220 deterministic :class:`~repro.robustness.FaultPlan` seeds, a
3-question batch runs with faults injected at the instrumented sites
(operator evaluation, cache lookup/store, compatible-set computation).
After every plan the suite asserts the full robustness contract:

1. **totality** -- N questions always produce N outcomes;
2. **containment** -- every failure is a :class:`~repro.errors.ReproError`
   subclass with a structured :class:`~repro.robustness.FailureInfo`;
   injected budget exhaustion surfaces as a *partial* report, never an
   exception;
3. **isolation** -- outcomes that completed un-degraded are
   fingerprint-identical to the fault-free run;
4. **invariants** -- the shared cache stays consistent
   (:meth:`~repro.relational.EvaluationCache.check_invariants`) and the
   database is never mutated (version key unchanged);
5. **determinism** -- the same seed fires the same faults and yields
   the same outcome shape.
"""

from __future__ import annotations

import json

import pytest

from repro.core import NedExplain, canonicalize
from repro.errors import ReproError, SchemaError
from repro.obs import ManualClock, use_clock
from repro.relational import EvaluationCache
from repro.relational.csv_io import load_database, save_database
from repro.robustness import (
    CircuitBreakerBoard,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    inject,
)
from repro.workloads.generator import chain_database, chain_query

SEEDS = range(220)
#: Seeds for the retry-path sweep: cache faults under a retry policy.
RETRY_SEEDS = range(120)
QUESTIONS = ["(R0.label: needle)", "(R0.label: r0v1)", "(R2.label: r2v3)"]


def _setup():
    db = chain_database(3, rows_per_relation=12)
    canonical = canonicalize(chain_query(3), db.schema)
    return db, canonical


def _fingerprint(report):
    return (
        tuple(
            (
                repr(a.ctuple),
                a.detailed_pairs,
                a.condensed_labels,
                a.secondary_labels,
                a.no_compatible_data,
                a.answer_not_missing,
            )
            for a in report.answers
        ),
        report.summary(),
    )


def _outcome_shape(outcome):
    """Comparable summary of one outcome, for determinism checks."""
    if outcome.ok:
        return ("ok", outcome.partial, _fingerprint(outcome.report))
    return ("failed", outcome.failure.error_class, outcome.failure.phase)


def _run_with_plan(db, canonical, plan):
    cache = EvaluationCache()
    engine = NedExplain(canonical, database=db, cache=cache)
    if plan is None:
        return engine.explain_each(QUESTIONS), cache
    with inject(plan):
        return engine.explain_each(QUESTIONS), cache


# The fault-free oracle, computed once per module.
_DB, _CANONICAL = _setup()
_ORACLE, _ = _run_with_plan(_DB, _CANONICAL, None)
_ORACLE_PRINTS = [_fingerprint(o.report) for o in _ORACLE]
_DATA_KEY = _DB.data_key


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_fault_plan_contract(seed):
    plan = FaultPlan.random(seed, faults=1 + seed % 3)
    outcomes, cache = _run_with_plan(_DB, _CANONICAL, plan)

    # 1. totality
    assert len(outcomes) == len(QUESTIONS)

    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            # 3. isolation: an un-degraded report matches fault-free
            if not outcome.partial:
                assert _fingerprint(outcome.report) == _ORACLE_PRINTS[
                    index
                ], f"seed {seed}: question {index} diverged"
            else:
                assert outcome.report.degraded_reason
        else:
            # 2. containment
            assert isinstance(outcome.error, ReproError)
            assert outcome.failure is not None
            assert outcome.failure.error_class
            assert outcome.failure.message

    # 4. invariants
    cache.check_invariants()
    assert _DB.data_key == _DATA_KEY, "a fault mutated the database"


@pytest.mark.parametrize("seed", [3, 17, 101, 202])
def test_same_seed_is_deterministic(seed):
    first_plan = FaultPlan.random(seed, faults=2)
    second_plan = FaultPlan.random(seed, faults=2)
    assert first_plan.specs == second_plan.specs

    first, _ = _run_with_plan(_DB, _CANONICAL, first_plan)
    second, _ = _run_with_plan(_DB, _CANONICAL, second_plan)
    assert [_outcome_shape(o) for o in first] == [
        _outcome_shape(o) for o in second
    ]
    assert first_plan.fired == second_plan.fired


def test_plans_actually_fire():
    """The random plans must be reachable -- a chaos suite whose
    faults never trigger proves nothing."""
    fired = 0
    for seed in SEEDS:
        plan = FaultPlan.random(seed, faults=1 + seed % 3)
        _run_with_plan(_DB, _CANONICAL, plan)
        fired += len(plan.fired)
    assert fired >= len(list(SEEDS)) // 3


def test_sites_covered_by_random_plans():
    """Every instrumented site is exercised across the seed range
    (csv.row is covered separately below: this workload loads no CSV)."""
    hit_sites = set()
    for seed in SEEDS:
        plan = FaultPlan.random(seed, faults=1 + seed % 3)
        _run_with_plan(_DB, _CANONICAL, plan)
        hit_sites |= {spec.site for spec in plan.fired}
    assert {
        "operator.apply",
        "cache.lookup",
        "cache.store",
        "compatible.find",
    } <= hit_sites


def test_csv_row_fault_contained(tmp_path):
    """The csv.row site fails as a ReproError and leaves no half-loaded
    database behind the caller's back."""
    save_database(_DB, tmp_path / "db")
    plan = FaultPlan([FaultSpec("csv.row", at_call=5)])
    with inject(plan):
        with pytest.raises(ReproError):
            load_database(tmp_path / "db")
    assert plan.fired
    # without the plan the same directory loads fine
    reloaded = load_database(tmp_path / "db")
    assert reloaded.table_names() == _DB.table_names()


def test_csv_row_budget_fault_contained(tmp_path):
    save_database(_DB, tmp_path / "db")
    plan = FaultPlan([FaultSpec("csv.row", at_call=0, kind="budget")])
    with inject(plan):
        with pytest.raises(ReproError):
            load_database(tmp_path / "db")


# ---------------------------------------------------------------------------
# Retry-path sweep: cache faults re-attempted under a RetryPolicy
# ---------------------------------------------------------------------------
def _run_with_retry(plan):
    cache = EvaluationCache()
    engine = NedExplain(_CANONICAL, database=_DB, cache=cache)
    retry = RetryPolicy(max_attempts=3, backoff_ms=1.0)
    with use_clock(ManualClock()), inject(plan):
        outcomes = engine.explain_each(QUESTIONS, retry=retry)
    return outcomes, cache


@pytest.mark.parametrize("seed", RETRY_SEEDS)
def test_retried_cache_fault_contract(seed):
    """Cache-site faults under retries: the cache invariants hold after
    every retried ``cache.lookup``/``cache.store`` fault, and any
    question a retry rescued is fingerprint-identical to fault-free."""
    plan = FaultPlan.random(
        seed,
        sites=("cache.lookup", "cache.store"),
        faults=1 + seed % 2,
        max_call=6,
        budget_rate=0.0,  # hard errors only: the retryable kind
    )
    outcomes, cache = _run_with_retry(plan)

    # totality, with or without retries
    assert len(outcomes) == len(QUESTIONS)
    # a retried cache fault must never leave a partial/corrupt entry
    cache.check_invariants()
    assert _DB.data_key == _DATA_KEY

    for index, outcome in enumerate(outcomes):
        if outcome.ok and not outcome.partial:
            assert _fingerprint(outcome.report) == _ORACLE_PRINTS[index]
            if outcome.attempts > 1:
                # a retry rescued this question: the fault really fired
                assert plan.fired
        elif not outcome.ok:
            # only exhausted retries may fail, and the failure says so
            assert outcome.failure.attempts == outcome.attempts


def test_retry_sweep_actually_retries():
    """The sweep must exercise the retry path, not just pass through:
    across the seed range, plenty of questions need >1 attempt."""
    rescued = 0
    for seed in RETRY_SEEDS:
        plan = FaultPlan.random(
            seed,
            sites=("cache.lookup", "cache.store"),
            faults=1 + seed % 2,
            max_call=6,
            budget_rate=0.0,
        )
        outcomes, _ = _run_with_retry(plan)
        rescued += sum(
            1 for o in outcomes if o.ok and o.attempts > 1
        )
    assert rescued >= len(list(RETRY_SEEDS)) // 4


def test_retried_run_is_deterministic():
    """Same seed, same retry policy -> identical outcome shapes and
    identical fault firings (the jitter is seeded, the clock manual)."""
    for seed in (5, 42, 97):
        plan_a = FaultPlan.random(
            seed, sites=("cache.lookup", "cache.store"), faults=2,
            max_call=6, budget_rate=0.0,
        )
        plan_b = FaultPlan.random(
            seed, sites=("cache.lookup", "cache.store"), faults=2,
            max_call=6, budget_rate=0.0,
        )
        first, _ = _run_with_retry(plan_a)
        second, _ = _run_with_retry(plan_b)
        assert [_outcome_shape(o) for o in first] == [
            _outcome_shape(o) for o in second
        ]
        assert plan_a.fired == plan_b.fired


# ---------------------------------------------------------------------------
# Parallel chaos: the same contract under the supervised executor
# ---------------------------------------------------------------------------
#: Seeds for the workers=4 contract sweep over ALL fault sites.
PARALLEL_SEEDS = range(60)
#: Seeds for the sequential-vs-parallel byte differential.
DIFFERENTIAL_SEEDS = range(40)
#: Sites whose firing pattern is a pure function of the question under
#: question-scoped counting, hence safe for byte-identical
#: differentials.  ``cache.store``/``operator.apply`` fire inside the
#: single-flight cache miss, so *which question's thread* reaches them
#: depends on scheduling -- they are exercised by the contract sweep
#: above instead.
SAFE_SITES = ("cache.lookup", "compatible.find")


def _run_parallel_with_plan(plan, workers=4):
    cache = EvaluationCache()
    engine = NedExplain(_CANONICAL, database=_DB, cache=cache)
    if plan is None:
        return engine.explain_each(QUESTIONS, workers=workers), cache
    with inject(plan):
        return engine.explain_each(QUESTIONS, workers=workers), cache


@pytest.mark.parametrize("seed", PARALLEL_SEEDS)
def test_parallel_seeded_fault_contract(seed):
    """The full robustness contract of the sequential sweep, with four
    workers racing over the shared cache: totality, containment,
    isolation of un-degraded outcomes, and cache/database invariants."""
    plan = FaultPlan.random(seed, faults=1 + seed % 3)
    outcomes, cache = _run_parallel_with_plan(plan)

    assert len(outcomes) == len(QUESTIONS)
    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            if not outcome.partial:
                assert _fingerprint(outcome.report) == _ORACLE_PRINTS[
                    index
                ], f"seed {seed}: question {index} diverged"
            else:
                assert outcome.report.degraded_reason
        else:
            assert isinstance(outcome.error, ReproError)
            assert outcome.failure is not None
            assert outcome.failure.error_class
    cache.check_invariants()
    assert _DB.data_key == _DATA_KEY, "a parallel fault mutated the db"


def _outcome_bytes(outcomes) -> str:
    """The canonical byte form the CLI's --json document uses."""
    return json.dumps(
        [o.to_dict() for o in outcomes], sort_keys=True, default=str
    )


def _run_scoped_differential(seed: int, workers: int):
    """One retried, fault-injected batch on a manual clock.

    Question-scoped fault counting plus per-question clock forks make
    the run a pure function of (seed, questions) -- the worker count
    must not show up in the output at all.  The breaker board is
    explicit and lenient: shared breaker state trips in completion
    order, which is the one piece of state that *is* allowed to differ
    across schedules, so the differential keeps it out of the loop.
    """
    plan = FaultPlan.random(
        seed,
        sites=SAFE_SITES,
        faults=2,
        max_call=4,
        budget_rate=0.3,
        scope="question",
    )
    cache = EvaluationCache()
    engine = NedExplain(_CANONICAL, database=_DB, cache=cache)
    retry = RetryPolicy(max_attempts=3, backoff_ms=1.0)
    breakers = CircuitBreakerBoard(window=1024, min_calls=1024)
    with use_clock(ManualClock()), inject(plan):
        outcomes = engine.explain_each(
            QUESTIONS, retry=retry, breakers=breakers, workers=workers
        )
    return outcomes, plan


def test_parallel_plain_run_is_byte_identical():
    """workers=4 vs sequential, no faults: byte-identical outcomes."""
    with use_clock(ManualClock()):
        sequential, _ = _run_with_plan(_DB, _CANONICAL, None)
    with use_clock(ManualClock()):
        parallel, _ = _run_parallel_with_plan(None)
    assert _outcome_bytes(parallel) == _outcome_bytes(sequential)


@pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
def test_parallel_fault_run_is_byte_identical(seed):
    """Retries + question-scoped faults: workers=4 output is
    byte-for-byte the sequential output, and the per-site fault deltas
    agree exactly (satellite: atomic per-site counters)."""
    sequential, seq_plan = _run_scoped_differential(seed, workers=1)
    parallel, par_plan = _run_scoped_differential(seed, workers=4)
    assert _outcome_bytes(parallel) == _outcome_bytes(sequential), (
        f"seed {seed}: parallel outcomes diverged from sequential"
    )
    assert seq_plan.snapshot() == par_plan.snapshot(), (
        f"seed {seed}: fault counters diverged under concurrency"
    )


def test_parallel_differential_faults_actually_fire():
    """The differential must exercise real faults, not 40 clean runs."""
    fired = 0
    for seed in DIFFERENTIAL_SEEDS:
        _, plan = _run_scoped_differential(seed, workers=4)
        fired += len(plan.fired)
    assert fired >= len(list(DIFFERENTIAL_SEEDS)) // 2
