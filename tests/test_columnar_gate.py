"""Acceptance checks for the ``columnar`` perf-gate suite.

The committed baselines in ``benchmarks/baselines/columnar.json`` are
the PR's performance claim: join-heavy evaluation (Gov5, the
scaling-join workload) at least **10x** faster on the columnar engine
than on the row engine, with byte-identical work accounting.  These
tests read the committed file -- they re-measure nothing, so they are
immune to runner noise -- and verify the suite stays registered and
buildable so ``gate check --suite columnar`` keeps guarding the ratio.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.baselines import read_suite_baseline
from repro.bench.gate import SUITES

BASELINE_DIR = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines"
)

#: benchmark-name stems measured on both engines, and the speedup the
#: tentpole promises for them
PAIRED_CASES = ("gov5.eval", "scaling_join.eval")
REQUIRED_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def baseline():
    return read_suite_baseline("columnar", BASELINE_DIR)


def test_committed_baselines_show_10x_on_joins(baseline):
    for case in PAIRED_CASES:
        row = baseline.entries[f"{case}.row"]
        columnar = baseline.entries[f"{case}.columnar"]
        speedup = row.median_ms / columnar.median_ms
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{case}: committed columnar speedup is {speedup:.1f}x, "
            f"below the required {REQUIRED_SPEEDUP:.0f}x"
        )


def test_committed_work_accounting_is_engine_identical(baseline):
    """Speed must come from representation, not from skipped work: the
    committed budget/operator counters agree exactly across engines,
    and only the columnar side counts batches."""
    for case in PAIRED_CASES:
        row = dict(baseline.entries[f"{case}.row"].counters)
        columnar = dict(baseline.entries[f"{case}.columnar"].counters)
        assert "evaluator.batches" not in row
        batches = columnar.pop("evaluator.batches")
        assert batches >= columnar["evaluator.operators"]
        assert columnar == row, f"{case}: counters diverged"


def test_committed_nedexplain_columnar_entry_present(baseline):
    """The end-to-end algorithm is gated too, not just raw evaluation."""
    entry = baseline.entries["gov5.ned.columnar"]
    assert entry.counters["cache.misses"] == 1
    assert entry.counters["evaluator.batches"] >= 1


def test_columnar_suite_registered_and_buildable():
    assert "columnar" in SUITES
    specs = SUITES["columnar"]()
    names = {spec.name for spec in specs}
    expected = {
        f"{case}.{engine}"
        for case in PAIRED_CASES
        for engine in ("row", "columnar")
    } | {"gov5.ned.columnar"}
    assert expected <= names
    assert all(spec.suite == "columnar" for spec in specs)


def test_committed_file_covers_every_spec(baseline):
    """`gate check --suite columnar` compares spec-by-spec: a spec
    missing from the committed file would silently go ungated."""
    names = {spec.name for spec in SUITES["columnar"]()}
    assert names == set(baseline.entries)
