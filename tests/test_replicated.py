"""The replicated storage backend: transport faults, quorum writes
and reads, read-repair, anti-entropy, and per-replica health.

The cluster under test is all in-memory (``MemoryIO`` children behind
``RemoteIO`` shims), so every test runs without a disk and every
network misbehaviour is a deterministic fault-plan site or an explicit
transport switch -- the same machinery the nemesis harness drives at
scale in ``test_nemesis.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import (
    JournalError,
    QuorumError,
    ReplicaUnavailableError,
    StorageError,
)
from repro.obs.clock import ManualClock, use_clock
from repro.robustness import FaultPlan, FaultSpec, inject
from repro.robustness.breaker import CircuitBreakerBoard
from repro.robustness.faults import ALL_FAULT_SITES, NET_FAULT_SITES
from repro.storage import (
    MemoryIO,
    RemoteIO,
    ReplicaTransport,
    ReplicatedBackend,
    build_replicated_backend,
    default_quorums,
    open_backend,
)


def _plan(site: str, at_call: int = 0) -> FaultPlan:
    return FaultPlan([FaultSpec(site, at_call=at_call)])


def _cluster(replicas: int = 3, **kwargs) -> ReplicatedBackend:
    # cooldown 0 so a breaker opened while a replica was down
    # half-opens immediately after restart -- tests heal instantly
    kwargs.setdefault(
        "breakers", CircuitBreakerBoard(min_calls=2, cooldown_s=0.0)
    )
    return build_replicated_backend(
        "memory", replicas=replicas, **kwargs
    )


# ---------------------------------------------------------------------------
# Fault sites and transport behaviour
# ---------------------------------------------------------------------------
class TestNetFaultSites:
    def test_net_sites_are_registered(self):
        assert set(NET_FAULT_SITES) <= set(ALL_FAULT_SITES)
        assert set(NET_FAULT_SITES) == {
            "net.drop",
            "net.delay",
            "net.partition",
            "net.dup",
            "replica.down",
            "replica.slow",
        }


class TestReplicaTransport:
    def test_drop_loses_exactly_one_delivery(self):
        transport = ReplicaTransport("0")
        with inject(_plan("net.drop")):
            with pytest.raises(ReplicaUnavailableError):
                transport.deliver("op", lambda: "x")
            assert transport.deliver("op", lambda: "x") == "x"

    def test_partition_is_sticky_until_healed(self):
        transport = ReplicaTransport("0")
        with inject(_plan("net.partition")):
            with pytest.raises(ReplicaUnavailableError):
                transport.deliver("op", lambda: "x")
        assert not transport.reachable
        with pytest.raises(ReplicaUnavailableError):
            transport.deliver("op", lambda: "x")
        transport.heal()
        assert transport.deliver("op", lambda: "x") == "x"

    def test_down_is_sticky_until_restarted(self):
        transport = ReplicaTransport("0")
        transport.kill()
        with pytest.raises(ReplicaUnavailableError) as excinfo:
            transport.deliver("op", lambda: "x")
        assert excinfo.value.reason == "down"
        transport.restart()
        assert transport.deliver("op", lambda: "x") == "x"

    def test_delay_costs_virtual_time_only(self):
        clock = ManualClock()
        transport = ReplicaTransport("0", delay_s=0.5)
        with use_clock(clock):
            with inject(_plan("net.delay")):
                assert transport.deliver("op", lambda: "x") == "x"
        assert clock.monotonic() == pytest.approx(0.5)

    def test_dup_replays_mutations_but_never_reads(self):
        calls = {"n": 0}

        def bump():
            calls["n"] += 1

        transport = ReplicaTransport("0")
        with inject(_plan("net.dup")):
            transport.deliver("mut", bump, mutating=True)
        assert calls["n"] == 2
        calls["n"] = 0
        with inject(_plan("net.dup")):
            transport.deliver("read", bump)  # not mutating: no replay
        assert calls["n"] == 1

    def test_dup_replay_rejection_keeps_the_first_ack(self):
        seen: list[int] = []

        def once():
            seen.append(1)
            if len(seen) > 1:
                raise StorageError("already applied")

        transport = ReplicaTransport("0")
        with inject(_plan("net.dup")):
            transport.deliver("mut", once, mutating=True)
        assert ("mut", "ok+dup") in transport.ops


# ---------------------------------------------------------------------------
# Quorum math and construction
# ---------------------------------------------------------------------------
class TestQuorums:
    def test_default_quorums_overlap(self):
        for n in (1, 2, 3, 4, 5, 7):
            w, r = default_quorums(n)
            assert w + r > n
            assert w == n // 2 + 1

    def test_non_overlapping_quorums_are_rejected(self):
        with pytest.raises(StorageError, match="overlap"):
            _cluster(3, write_quorum=1, read_quorum=1)

    def test_open_backend_builds_the_replicated_kind(self):
        backend = open_backend("memory", replicas=3)
        assert backend.describe()["kind"] == "replicated"
        assert len(backend.children) == 3
        plain = open_backend("memory")
        assert plain.describe()["kind"] == "memory"


# ---------------------------------------------------------------------------
# Documents under quorum
# ---------------------------------------------------------------------------
class TestReplicatedDocuments:
    def test_round_trip_lands_on_every_replica(self):
        backend = _cluster()
        backend.write_document("doc.json", {"k": "v"})
        assert backend.read_document("doc.json") == {"k": "v"}
        for child in backend.children:
            raw = json.loads(
                child.io.child.read_text(child.path_of("doc.json"))
            )
            assert raw["document"] == {"k": "v"}
            assert raw["seq"] == 1

    def test_write_survives_one_dead_replica(self):
        backend = _cluster()
        backend.transports[2].kill()
        backend.write_document("doc.json", {"k": "v"})
        assert backend.read_document("doc.json") == {"k": "v"}

    def test_write_fails_below_quorum(self):
        backend = _cluster()
        backend.transports[1].kill()
        backend.transports[2].kill()
        with pytest.raises(QuorumError) as excinfo:
            backend.write_document("doc.json", {"k": "v"})
        assert excinfo.value.acks == 1
        assert excinfo.value.required == 2

    def test_read_fails_below_quorum(self):
        backend = _cluster()
        backend.write_document("doc.json", {"k": "v"})
        backend.transports[1].partition()
        backend.transports[2].partition()
        with pytest.raises(QuorumError):
            backend.read_document("doc.json")

    def test_read_repair_heals_a_stale_replica(self):
        backend = _cluster()
        backend.write_document("doc.json", {"version": 1})
        backend.transports[2].kill()
        backend.write_document("doc.json", {"version": 2})
        backend.transports[2].restart()
        assert backend.read_document("doc.json") == {"version": 2}
        stale = backend.children[2]
        raw = json.loads(
            stale.io.child.read_text(stale.path_of("doc.json"))
        )
        assert raw["document"] == {"version": 2}

    def test_exists_and_listing_are_unions(self):
        backend = _cluster()
        backend.write_document("a.json", {})
        backend.transports[2].kill()
        backend.write_document("b.json", {})
        assert backend.exists("a.json")
        assert backend.exists("b.json")
        assert backend.list_documents() == ["a.json", "b.json"]


# ---------------------------------------------------------------------------
# The replicated journal
# ---------------------------------------------------------------------------
class TestReplicatedJournal:
    def test_appends_reach_every_replica(self):
        backend = _cluster()
        with backend.journal("batch.jsonl") as journal:
            journal.record(0, "q0", {"status": "ok"})
            journal.record(1, "q1", {"status": "ok"})
        for child in backend.children:
            text = child.io.child.read_text(
                child.path_of("batch.jsonl")
            )
            assert len(text.splitlines()) == 2

    def test_append_with_one_dead_replica_still_acks(self):
        backend = _cluster()
        backend.transports[2].kill()
        with backend.journal("batch.jsonl") as journal:
            journal.record(0, "q0", {"status": "ok"})
            assert journal.ack_copies[0] == ("0", "1")

    def test_append_below_quorum_raises(self):
        backend = _cluster()
        with backend.journal("batch.jsonl") as journal:
            backend.transports[1].kill()
            backend.transports[2].kill()
            with pytest.raises(JournalError, match="1 of 2"):
                journal.record(0, "q0", {"status": "ok"})

    def test_healed_replica_rejoins_mid_batch(self):
        backend = _cluster()
        backend.transports[2].kill()
        with backend.journal("batch.jsonl") as journal:
            journal.record(0, "q0", {"status": "ok"})
            backend.transports[2].restart()
            journal.record(1, "q1", {"status": "ok"})
            assert journal.ack_copies[1] == ("0", "1", "2")

    def test_resume_merges_replica_copies(self):
        backend = _cluster()
        with backend.journal("batch.jsonl") as journal:
            journal.record(0, "q0", {"status": "ok"})
        with backend.journal("batch.jsonl", resume=True) as resumed:
            assert resumed.replayable_count == 1
            assert resumed.completed(0, "q0") == {"status": "ok"}

    def test_resume_rejects_conflicting_questions(self):
        backend = _cluster()
        with backend.journal("batch.jsonl") as journal:
            journal.record(0, "q0", {"status": "ok"})
        with backend.journal("batch.jsonl", resume=True) as resumed:
            with pytest.raises(JournalError, match="refusing"):
                resumed.completed(0, "something else")


# ---------------------------------------------------------------------------
# Anti-entropy and recovery
# ---------------------------------------------------------------------------
class TestAntiEntropy:
    def test_lagging_replica_converges_byte_identical(self):
        backend = _cluster()
        backend.write_document("doc.json", {"k": "v"})
        backend.transports[2].kill()
        backend.write_document("doc.json", {"k": "v2"})
        with backend.journal("batch.jsonl") as journal:
            journal.record(0, "q0", {"status": "ok"})
        backend.transports[2].restart()
        report = backend.recover().anti_entropy
        assert report is not None and report.full
        assert report.changes > 0
        tables = [dict(c.io.child.files) for c in backend.children]
        stripped = [
            {
                k.split("/", 2)[-1]: v
                for k, v in table.items()
                if "/quarantine/" not in k
            }
            for table in tables
        ]
        assert stripped[0] == stripped[1] == stripped[2]
        # a second pass finds nothing left to do
        assert backend.anti_entropy().changes == 0

    def test_full_pass_rolls_back_sub_quorum_writes(self):
        backend = _cluster()
        # a write that reached only one replica and was never acked
        backend.children[0].write_document("ghost.json", {"k": "?"})
        report = backend.anti_entropy()
        assert report.documents_rolled_back == 1
        assert backend.read_document("ghost.json") is None
        # rolled back as evidence, not deleted
        quarantine = [
            k
            for k in backend.children[0].io.child.files
            if "/quarantine/" in k
        ]
        assert any("ghost" in k for k in quarantine)

    def test_partial_pass_propagates_only_committed(self):
        backend = _cluster()
        backend.children[0].write_document("ghost.json", {"k": "?"})
        backend.transports[2].partition()
        report = backend.anti_entropy()
        assert not report.full
        assert report.documents_rolled_back == 0
        # the sub-quorum ghost survives until a full pass can prove
        # no unreachable replica holds a quorum-completing copy
        assert backend.children[0].read_document("ghost.json") is not None

    def test_recover_skips_unreachable_replicas(self):
        backend = _cluster()
        backend.write_document("doc.json", {"k": "v"})
        backend.transports[1].partition()
        report = backend.recover()
        assert report.skipped == ["1"]
        assert report.anti_entropy is not None
        assert not report.anti_entropy.full


# ---------------------------------------------------------------------------
# Health and breakers
# ---------------------------------------------------------------------------
class TestHealth:
    def test_health_reports_degraded_replicas(self):
        backend = _cluster()
        health = backend.health()
        assert health["degraded"] == []
        assert health["quorum_ok"]
        backend.transports[1].kill()
        health = backend.health()
        assert health["degraded"] == ["1"]
        assert health["quorum_ok"]  # 2 of 3 still satisfies W=R=2
        backend.transports[2].partition()
        health = backend.health()
        assert sorted(health["degraded"]) == ["1", "2"]
        assert not health["quorum_ok"]

    def test_breaker_opens_for_a_dead_replica(self):
        backend = _cluster(
            breakers=CircuitBreakerBoard(min_calls=2, cooldown_s=60.0)
        )
        backend.transports[2].kill()
        backend.write_document("a.json", {})
        backend.write_document("b.json", {})
        assert "replica.2" in backend.breakers.open_sites()
        # the open breaker stops even attempting deliveries
        failed_before = backend.transports[2].failed
        backend.write_document("c.json", {})
        assert backend.transports[2].failed == failed_before


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------
class TestReplicatedSnapshots:
    def test_snapshot_round_trip_and_generations(self):
        backend = _cluster()
        backend.write_snapshot("state", {"rows": 1})
        backend.write_snapshot("state", {"rows": 2})
        assert backend.snapshot_generations("state") == [1, 2]
        document, generation = backend.read_snapshot("state")
        assert document == {"rows": 2}
        assert generation == 2

    def test_snapshot_needs_write_quorum(self):
        backend = _cluster()
        backend.transports[1].kill()
        backend.transports[2].kill()
        with pytest.raises(QuorumError):
            backend.write_snapshot("state", {"rows": 1})

    def test_snapshot_read_repairs_laggards(self):
        backend = _cluster()
        backend.transports[2].kill()
        backend.write_snapshot("state", {"rows": 1})
        backend.transports[2].restart()
        document, generation = backend.read_snapshot("state")
        assert (document, generation) == ({"rows": 1}, 1)
        laggard = backend.children[2]
        assert laggard.snapshot_generations("state") == [1]
