"""Differential harness: shared-evaluation cache vs fresh per-question runs.

The batched path (one cached query evaluation shared by N why-not
questions) must be *observationally identical* to N independent
NedExplain runs that each evaluate the query from scratch
(``use_shared_evaluation=False``, the literal per-question loop of
Alg. 1).  "Identical" is checked at every level the paper reports:

* the detailed answer -- ``(tid, picky subquery)`` pairs;
* the condensed and secondary answers;
* the diagnostic flags (``no_compatible_data``, ``answer_not_missing``)
  and the rendered ``summary()`` text;
* the full TabQ contents per c-tuple: Input, Output, Compatibles and
  blocked columns of every subquery entry.

Every workload use case of the paper's Table 4 is exercised, grouped
by query so the batch genuinely shares one evaluation, and the cache
counters are asserted to show exactly one full evaluation per query.
"""

from __future__ import annotations

import pytest

from repro.baseline import WhyNotBaseline
from repro.core import NedExplain, NedExplainConfig
from repro.errors import UnsupportedQueryError
from repro.relational import EvaluationCache
from repro.workloads import USE_CASES, get_canonical, get_database

# ---------------------------------------------------------------------------
# Observational fingerprints
# ---------------------------------------------------------------------------


def answer_fingerprint(answer):
    """Everything the paper reports for one c-tuple, as plain data."""
    return (
        repr(answer.ctuple),
        answer.detailed_pairs,
        answer.condensed_labels,
        answer.secondary_labels,
        tuple(q.name or q.describe() for q in answer.empty_outputs),
        answer.no_compatible_data,
        answer.answer_not_missing,
    )


def report_fingerprint(report):
    return (
        tuple(answer_fingerprint(a) for a in report.answers),
        report.summary(),
    )


def tabq_snapshot(tabq):
    """The full TabQ contents: one row per subquery entry.

    Tuples compare structurally (values + lineage), so equal snapshots
    mean byte-identical Input/Output/Compatibles/blocked columns.
    """
    return tuple(
        (
            entry.label,
            entry.level,
            entry.op,
            tuple(entry.input),
            None if entry.output is None else tuple(entry.output),
            tuple(entry.compatibles),
            tuple(entry.blocked),
        )
        for entry in tabq
    )


def fresh_run(canonical, database, predicate):
    """The oracle: an independent engine evaluating from scratch."""
    engine = NedExplain(
        canonical,
        database=database,
        config=NedExplainConfig(use_shared_evaluation=False),
    )
    report = engine.explain(predicate)
    return report, [tabq_snapshot(t) for t in engine.last_tabqs]


# ---------------------------------------------------------------------------
# Group use cases by query so batches genuinely share an evaluation
# ---------------------------------------------------------------------------
QUERY_GROUPS: dict[str, list] = {}
for _uc in USE_CASES:
    QUERY_GROUPS.setdefault(_uc.query, []).append(_uc)


@pytest.mark.parametrize("query", sorted(QUERY_GROUPS))
def test_batched_matches_fresh_per_question(query):
    cases = QUERY_GROUPS[query]
    database = get_database(cases[0].database)
    canonical = get_canonical(query)
    predicates = [uc.predicate for uc in cases]

    cache = EvaluationCache()
    engine = NedExplain(canonical, database=database, cache=cache)
    batched = []
    for predicate in predicates:
        report = engine.explain(predicate)
        batched.append(
            (report, [tabq_snapshot(t) for t in engine.last_tabqs])
        )

    # One full evaluation serves the whole batch; every further
    # question is a cache hit.
    assert cache.stats.evaluations == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == len(predicates) - 1

    for predicate, (report, snapshots) in zip(predicates, batched):
        oracle_report, oracle_snapshots = fresh_run(
            canonical, database, predicate
        )
        assert report_fingerprint(report) == report_fingerprint(
            oracle_report
        ), f"answers diverge for {query} / {predicate}"
        assert snapshots == oracle_snapshots, (
            f"TabQ contents diverge for {query} / {predicate}"
        )


@pytest.mark.parametrize("query", sorted(QUERY_GROUPS))
def test_explain_many_equals_sequential_explain(query):
    cases = QUERY_GROUPS[query]
    database = get_database(cases[0].database)
    canonical = get_canonical(query)
    predicates = [uc.predicate for uc in cases]

    batch_engine = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    )
    reports = batch_engine.explain_many(predicates)
    assert len(reports) == len(predicates)

    loop_engine = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    )
    for predicate, report in zip(predicates, reports):
        assert report_fingerprint(report) == report_fingerprint(
            loop_engine.explain(predicate)
        )


def test_all_use_cases_covered_by_query_groups():
    """The grouping above must not silently drop a Table-4 use case."""
    grouped = {uc.name for group in QUERY_GROUPS.values() for uc in group}
    assert grouped == {uc.name for uc in USE_CASES}


# ---------------------------------------------------------------------------
# Baseline: cached evaluation must not change the Why-Not answers
# ---------------------------------------------------------------------------


def baseline_fingerprint(report):
    return (
        report.answer_labels,
        report.satisfied_constraints,
        tuple(
            (
                repr(trace.item),
                trace.survived,
                None
                if trace.blamed is None
                else (trace.blamed.name or trace.blamed.describe()),
            )
            for trace in report.traces
        ),
        report.summary(),
    )


@pytest.mark.parametrize("use_case", [uc.name for uc in USE_CASES])
def test_baseline_cached_matches_uncached(use_case):
    uc = next(u for u in USE_CASES if u.name == use_case)
    database = get_database(uc.database)
    canonical = get_canonical(uc.query)
    try:
        uncached = WhyNotBaseline(
            canonical, database=database, use_cache=False
        )
    except UnsupportedQueryError:
        pytest.skip("baseline does not support this query (n.a. row)")
    cache = EvaluationCache()
    cached = WhyNotBaseline(canonical, database=database, cache=cache)

    expected = baseline_fingerprint(uncached.explain(uc.predicate))
    assert baseline_fingerprint(cached.explain(uc.predicate)) == expected
    # and again, now served from the cache
    assert cache.stats.evaluations == 1
    assert baseline_fingerprint(cached.explain(uc.predicate)) == expected
    assert cache.stats.evaluations == 1
    assert cache.stats.hits >= 1


# ---------------------------------------------------------------------------
# Fault isolation: a failing question must not perturb the others
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", sorted(QUERY_GROUPS))
@pytest.mark.parametrize("failing_index", [0, -1])
def test_faulty_batch_keeps_other_reports_identical(query, failing_index):
    """N questions with question k failing still yield N outcomes, and
    every non-failing report is fingerprint-identical to the fault-free
    batch (the acceptance criterion of the robustness PR)."""
    from repro.robustness import FaultPlan, FaultSpec, inject

    cases = QUERY_GROUPS[query]
    database = get_database(cases[0].database)
    canonical = get_canonical(query)
    predicates = [uc.predicate for uc in cases]

    fault_free = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    ).explain_each(predicates)
    assert all(outcome.ok for outcome in fault_free)

    k = failing_index % len(predicates)
    # one compatible.find call per c-tuple: count the calls the first
    # k questions consume so the fault lands inside question k
    probe = FaultPlan([])
    engine = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    )
    with inject(probe):
        engine.explain_each(predicates[:k])
    at_call = probe.calls.get("compatible.find", 0)

    plan = FaultPlan([FaultSpec("compatible.find", at_call=at_call)])
    faulty_engine = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    )
    with inject(plan):
        outcomes = faulty_engine.explain_each(predicates)

    assert len(outcomes) == len(predicates)
    assert plan.fired, "the injected fault never triggered"
    assert not outcomes[k].ok
    assert outcomes[k].failure.error_class == "InjectedFaultError"
    for index, outcome in enumerate(outcomes):
        if index == k:
            continue
        assert outcome.ok
        assert report_fingerprint(outcome.report) == report_fingerprint(
            fault_free[index].report
        ), f"question {index} perturbed by failure of question {k}"


def test_nedexplain_and_baseline_share_one_evaluation():
    """The README's batch story: both algorithms, one evaluation."""
    uc = next(u for u in USE_CASES if u.name == "Crime1")
    database = get_database(uc.database)
    canonical = get_canonical(uc.query)
    cache = EvaluationCache()

    ned = NedExplain(canonical, database=database, cache=cache)
    ned.explain(uc.predicate)
    baseline = WhyNotBaseline(canonical, database=database, cache=cache)
    baseline.explain(uc.predicate)

    assert cache.stats.evaluations == 1
    assert cache.stats.hits >= 1
