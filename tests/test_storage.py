"""The pluggable storage subsystem: shim faults, backends, recovery.

Three layers under test:

* the :class:`~repro.storage.io.StorageIO` shim -- the real and the
  in-memory disks speak one primitive surface, and the
  ``io.*`` fault sites make either misbehave deterministically
  (partial writes land, renames tear, reads fail);
* the :class:`~repro.storage.backend.StorageBackend` -- atomic
  durable documents, checksummed generation-numbered snapshots,
  quarantine-not-delete recovery;
* the integration with :class:`~repro.robustness.journal.BatchJournal`
  (ENOSPC mid-append, unreadable files, read-only directories) and
  with the service's registration persistence.
"""

from __future__ import annotations

import errno
import json

import pytest

from repro.errors import JournalError, StorageError
from repro.robustness import FaultPlan, FaultSpec, inject
from repro.robustness.faults import ALL_FAULT_SITES, IO_FAULT_SITES
from repro.robustness.journal import BatchJournal
from repro.storage import (
    LocalDirBackend,
    MemoryBackend,
    MemoryIO,
    atomic_write_json,
    atomic_write_text,
    open_backend,
)
from repro.storage.backend import SNAPSHOT_KEEP


def _spec(site: str, at_call: int = 0) -> FaultPlan:
    return FaultPlan([FaultSpec(site, at_call=at_call)])


# ---------------------------------------------------------------------------
# The I/O shim
# ---------------------------------------------------------------------------
class TestFaultSites:
    def test_io_sites_are_registered_but_separate(self):
        assert set(IO_FAULT_SITES) <= set(ALL_FAULT_SITES)
        assert all(site.startswith("io.") for site in IO_FAULT_SITES)

    def test_enospc_lands_a_partial_write(self, tmp_path):
        path = tmp_path / "doc.json"
        with inject(_spec("io.enospc")):
            with pytest.raises(StorageError) as excinfo:
                atomic_write_text(path, "x" * 300)
        assert excinfo.value.errno == errno.ENOSPC
        # the partial write landed in the temp file -- exactly what a
        # full disk leaves behind -- and the destination was never made
        tmp = tmp_path / "doc.json.tmp"
        assert tmp.exists()
        assert 0 < len(tmp.read_text()) < 300
        assert not path.exists()

    def test_short_write_is_eio_with_torn_bytes(self, tmp_path):
        path = tmp_path / "doc.json"
        with inject(_spec("io.write_short")):
            with pytest.raises(StorageError) as excinfo:
                atomic_write_text(path, "y" * 100)
        assert excinfo.value.errno == errno.EIO
        assert len((tmp_path / "doc.json.tmp").read_text()) == 50

    def test_torn_rename_strands_the_temp_file(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "old")
        with inject(_spec("io.torn_rename")):
            with pytest.raises(StorageError):
                atomic_write_text(path, "new")
        assert path.read_text() == "old"  # destination untouched
        assert (tmp_path / "doc.json.tmp").read_text() == "new"

    def test_eio_fails_reads(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("data")
        backend = LocalDirBackend(tmp_path)
        with inject(_spec("io.eio")):
            with pytest.raises(StorageError) as excinfo:
                backend.io.read_text(path)
        assert excinfo.value.errno == errno.EIO

    def test_fsync_lost_is_silent(self, tmp_path):
        # the lying disk: invisible on a healthy run (only the
        # crash-state harness can observe the damage)
        with inject(_spec("io.fsync_lost")):
            atomic_write_text(tmp_path / "doc.json", "data")
        assert (tmp_path / "doc.json").read_text() == "data"


class TestMemoryIO:
    def test_round_trip_and_listdir(self, tmp_path):
        io = MemoryIO()
        io.mkdir(tmp_path)
        io.write_text(tmp_path / "a.json", "A")
        io.write_text(tmp_path / "b.json", "B")
        assert io.read_text(tmp_path / "a.json") == "A"
        assert io.listdir(tmp_path) == ["a.json", "b.json"]
        assert io.exists(tmp_path / "a.json")
        assert io.is_dir(tmp_path)
        assert not io.exists(tmp_path / "missing.json")

    def test_append_mode_and_replace(self, tmp_path):
        io = MemoryIO()
        io.mkdir(tmp_path)
        io.write_text(tmp_path / "log", "one\n")
        handle = io.open(tmp_path / "log", "a")
        io.write(handle, "two\n")
        io.close(handle)
        assert io.read_text(tmp_path / "log") == "one\ntwo\n"
        io.replace(tmp_path / "log", tmp_path / "log2")
        assert not io.exists(tmp_path / "log")
        assert io.read_text(tmp_path / "log2") == "one\ntwo\n"

    def test_open_missing_parent_fails(self, tmp_path):
        io = MemoryIO()
        with pytest.raises(StorageError) as excinfo:
            io.open(tmp_path / "nowhere" / "f", "w")
        assert excinfo.value.errno == errno.ENOENT

    def test_read_missing_file_fails(self, tmp_path):
        io = MemoryIO()
        with pytest.raises(StorageError):
            io.read_text(tmp_path / "missing")


# ---------------------------------------------------------------------------
# Backend documents + snapshots
# ---------------------------------------------------------------------------
@pytest.fixture(params=["local", "memory"])
def backend(request, tmp_path):
    if request.param == "local":
        return LocalDirBackend(tmp_path)
    return MemoryBackend()


class TestDocuments:
    def test_round_trip(self, backend):
        backend.write_document("doc.json", {"k": "v"})
        assert backend.read_document("doc.json") == {"k": "v"}
        assert backend.read_document("missing.json") is None
        assert backend.list_documents() == ["doc.json"]
        backend.delete_document("doc.json")
        assert backend.read_document("doc.json") is None

    def test_corrupt_document_raises(self, backend):
        backend.io.write_text(backend.path_of("bad.json"), "{not json")
        with pytest.raises(StorageError):
            backend.read_document("bad.json")

    def test_names_must_be_flat(self, backend):
        with pytest.raises(StorageError):
            backend.path_of("../escape.json")
        with pytest.raises(StorageError):
            backend.path_of(".hidden.json")

    def test_snapshots_are_excluded_from_listing(self, backend):
        backend.write_document("databases.json", {"a": {}})
        backend.write_snapshot("databases", {"a": {}})
        assert backend.list_documents() == ["databases.json"]


class TestSnapshots:
    def test_generations_advance_and_prune(self, backend):
        for i in range(SNAPSHOT_KEEP + 2):
            generation = backend.write_snapshot("fam", {"i": i})
            assert generation == i + 1
        generations = backend.snapshot_generations("fam")
        assert len(generations) == SNAPSHOT_KEEP
        assert generations[-1] == SNAPSHOT_KEEP + 2
        document, generation = backend.read_snapshot("fam")
        assert document == {"i": SNAPSHOT_KEEP + 1}
        assert generation == SNAPSHOT_KEEP + 2

    def test_corrupt_newest_falls_back_to_older(self, backend):
        backend.write_snapshot("fam", {"good": 1})
        backend.write_snapshot("fam", {"good": 2})
        # flip a byte in the newest generation's checksummed payload
        name = "fam.gen-2.snap.json"
        payload = json.loads(backend.io.read_text(backend.path_of(name)))
        payload["document"] = {"tampered": True}
        backend.io.write_text(
            backend.path_of(name), json.dumps(payload)
        )
        document, generation = backend.read_snapshot("fam")
        assert (document, generation) == ({"good": 1}, 1)
        # the corrupt generation was quarantined, not deleted
        qdir = backend.root / "quarantine"
        assert name in backend.io.listdir(qdir)

    def test_unreadable_snapshot_is_skipped(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_snapshot("fam", {"v": 1})
        backend.write_snapshot("fam", {"v": 2})
        # io.eio call 0 is the directory listing; call 1 is the read
        # of the newest generation -- the older one still verifies
        with inject(_spec("io.eio", at_call=1)):
            document, generation = backend.read_snapshot("fam")
        assert (document, generation) == ({"v": 1}, 1)

    def test_no_valid_generation_returns_none(self, backend):
        assert backend.read_snapshot("never") is None


class TestRecovery:
    def test_stray_tmp_files_are_quarantined(self, backend):
        backend.write_document("doc.json", {"k": 1})
        backend.io.write_text(
            backend.path_of("doc.json.tmp"), "half-writ"
        )
        report = backend.recover()
        assert "doc.json.tmp" in report.quarantined
        assert not backend.io.exists(backend.path_of("doc.json.tmp"))
        # the committed document is untouched
        assert backend.read_document("doc.json") == {"k": 1}

    def test_corrupt_primary_is_repaired_from_snapshot(self, backend):
        backend.write_document("databases.json", {"db": {"scale": 1}})
        backend.write_snapshot("databases", {"db": {"scale": 1}})
        backend.io.write_text(
            backend.path_of("databases.json"), "{torn"
        )
        report = backend.recover()
        assert any("databases.json" in r for r in report.repaired)
        assert backend.read_document("databases.json") == {
            "db": {"scale": 1}
        }
        # the torn original is evidence in quarantine
        assert "databases.json" in report.quarantined

    def test_missing_primary_is_restored_from_snapshot(self, backend):
        backend.write_snapshot("databases", {"db": {}})
        backend.recover()
        assert backend.read_document("databases.json") == {"db": {}}

    def test_corrupt_manifests_are_left_for_service_recovery(
        self, backend
    ):
        # the service layer owns manifest semantics: storage recovery
        # must leave even a corrupt one in place and visible
        backend.io.write_text(
            backend.path_of("bad.request.json"), "{not json"
        )
        backend.recover()
        assert backend.io.exists(backend.path_of("bad.request.json"))

    def test_recovery_is_idempotent(self, backend):
        backend.write_document("databases.json", {"db": {}})
        backend.write_snapshot("databases", {"db": {}})
        first = backend.recover()
        second = backend.recover()
        assert second.quarantined == []
        assert second.repaired == []
        assert first.scanned >= second.scanned


class TestQuarantineCap:
    def test_quarantine_growth_is_capped_oldest_first(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        backend = MemoryBackend(metrics=metrics, quarantine_keep=3)
        for i in range(5):
            backend.io.write_text(
                backend.path_of(f"bad-{i}.json.tmp"), "torn"
            )
            backend.quarantine(f"bad-{i}.json.tmp")
        qdir = backend.root / "quarantine"
        kept = sorted(backend.io.listdir(qdir))
        # newest three survive; the two oldest were pruned
        assert kept == [
            "bad-2.json.tmp",
            "bad-3.json.tmp",
            "bad-4.json.tmp",
        ]
        assert (
            metrics.counter("storage.quarantine.pruned").value == 2
        )

    def test_inherited_evidence_is_pruned_before_fresh(self):
        backend = MemoryBackend(quarantine_keep=2)
        # evidence left behind by an earlier process: on disk but not
        # in this process's quarantine order
        qdir = backend.root / "quarantine"
        backend.io.mkdir(qdir)
        backend.io.write_text(qdir / "zz-old.json", "ancient")
        backend.io.write_text(
            backend.path_of("fresh.json.tmp"), "torn"
        )
        backend.quarantine("fresh.json.tmp")
        backend.io.write_text(
            backend.path_of("newer.json.tmp"), "torn"
        )
        backend.quarantine("newer.json.tmp")
        kept = sorted(backend.io.listdir(qdir))
        assert kept == ["fresh.json.tmp", "newer.json.tmp"]

    def test_unlimited_keep_disables_pruning(self):
        backend = MemoryBackend(quarantine_keep=None)
        for i in range(40):
            backend.io.write_text(
                backend.path_of(f"bad-{i}.json.tmp"), "torn"
            )
            backend.quarantine(f"bad-{i}.json.tmp")
        qdir = backend.root / "quarantine"
        assert len(backend.io.listdir(qdir)) == 40


class TestExists:
    def test_exists_by_logical_name(self, backend):
        backend.write_document("doc.json", {"k": 1})
        assert backend.exists("doc.json")
        assert not backend.exists("missing.json")


class TestOpenBackend:
    def test_kinds(self, tmp_path):
        assert open_backend("local", root=tmp_path).kind == "local"
        assert open_backend("memory").kind == "memory"

    def test_local_needs_root(self):
        with pytest.raises(StorageError):
            open_backend("local")

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(StorageError):
            open_backend("cloud", root=tmp_path)


# ---------------------------------------------------------------------------
# Journal integration
# ---------------------------------------------------------------------------
def _outcome(i: int) -> dict:
    return {"question": f"(q: {i})", "ok": True, "i": i}


class TestJournalOnBackend:
    def test_journal_round_trip_on_memory(self):
        backend = MemoryBackend()
        journal = backend.journal("batch.journal.jsonl")
        journal.record(0, "(q: 0)", _outcome(0))
        journal.record(1, "(q: 1)", _outcome(1))
        journal.close()
        resumed = backend.journal("batch.journal.jsonl", resume=True)
        assert resumed.completed(0, "(q: 0)") == _outcome(0)
        assert resumed.completed(1, "(q: 1)") == _outcome(1)
        assert resumed.completed(2, "(q: 2)") is None
        resumed.close()

    def test_enospc_mid_append_raises_journal_error(self, tmp_path):
        journal = BatchJournal(tmp_path / "b.jsonl")
        journal.record(0, "(q: 0)", _outcome(0))
        with inject(_spec("io.enospc")):
            with pytest.raises(JournalError) as excinfo:
                journal.record(1, "(q: 1)", _outcome(1))
        assert "ENOSPC" in str(excinfo.value)
        journal.close()
        # the torn tail the failed append left behind is discarded on
        # resume; the committed record survives
        resumed = BatchJournal(tmp_path / "b.jsonl", resume=True)
        assert resumed.completed(0, "(q: 0)") == _outcome(0)
        assert resumed.completed(1, "(q: 1)") is None
        assert resumed.discarded == 1
        resumed.close()

    def test_read_only_journal_dir_raises_journal_error(
        self, tmp_path, monkeypatch
    ):
        # permission bits do not bite when the suite runs as root, so
        # the open hook simulates the EACCES a read-only directory
        # produces
        import repro.robustness.journal as journal_module

        def denied(path, mode):
            raise PermissionError(
                errno.EACCES, "Permission denied", str(path)
            )

        monkeypatch.setattr(
            journal_module, "_open_journal_file", denied
        )
        with pytest.raises(JournalError) as excinfo:
            BatchJournal(tmp_path / "b.jsonl")
        assert "Permission denied" in str(excinfo.value)

    def test_unreadable_journal_on_resume_raises(self, tmp_path):
        path = tmp_path / "b.jsonl"
        journal = BatchJournal(path)
        journal.record(0, "(q: 0)", _outcome(0))
        journal.close()
        with inject(_spec("io.eio")):
            with pytest.raises(JournalError):
                BatchJournal(path, resume=True)


class TestAtomicWriteJson:
    def test_document_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        document = json.loads(path.read_text())
        assert document == {"a": 1, "b": 2}
        assert not (tmp_path / "doc.json.tmp").exists()
