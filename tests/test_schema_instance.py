"""Unit tests for schemas and instances (Sec. 2.1, Def. 2.3)."""

import pytest

from repro.errors import SchemaError, UnknownRelationError
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    RelationInstance,
    RelationSchema,
    Tuple,
    alias_schema,
    base_tuple,
    query_input_instance,
)
from repro.relational.schema import check_disjoint


# ---------------------------------------------------------------------------
# RelationSchema
# ---------------------------------------------------------------------------
class TestRelationSchema:
    def test_type_is_qualified(self):
        schema = RelationSchema("A", ("aid", "name"))
        assert schema.type == frozenset({"A.aid", "A.name"})

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("x",))

    def test_dotted_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("A.B", ("x",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("A", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("A", ("x", "x"))

    def test_qualified_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("A", ("B.x",))

    def test_key_must_be_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("A", ("x",), key="y")

    def test_qualified_lookup(self):
        schema = RelationSchema("A", ("aid",))
        assert schema.qualified("aid") == "A.aid"
        with pytest.raises(SchemaError):
            schema.qualified("nope")

    def test_renamed_keeps_attributes_and_key(self):
        schema = RelationSchema("A", ("aid", "x"), key="aid")
        aliased = schema.renamed("A2")
        assert aliased.name == "A2"
        assert aliased.key == "aid"
        assert aliased.type == frozenset({"A2.aid", "A2.x"})


# ---------------------------------------------------------------------------
# DatabaseSchema
# ---------------------------------------------------------------------------
class TestDatabaseSchema:
    def test_duplicate_relations_rejected(self):
        r = RelationSchema("A", ("x",))
        with pytest.raises(SchemaError):
            DatabaseSchema((r, r))

    def test_relation_lookup(self):
        schema = DatabaseSchema.of(RelationSchema("A", ("x",)))
        assert schema.relation("A").name == "A"
        with pytest.raises(UnknownRelationError):
            schema.relation("B")

    def test_contains_iter_len_names(self):
        schema = DatabaseSchema.of(
            RelationSchema("A", ("x",)), RelationSchema("B", ("y",))
        )
        assert "A" in schema and "C" not in schema
        assert len(schema) == 2
        assert schema.names() == ("A", "B")

    def test_with_relation(self):
        schema = DatabaseSchema.of(RelationSchema("A", ("x",)))
        bigger = schema.with_relation(RelationSchema("B", ("y",)))
        assert "B" in bigger and "B" not in schema

    def test_alias_schema_self_join(self):
        base = DatabaseSchema.of(RelationSchema("C", ("id", "t")))
        aliased = alias_schema({"C1": "C", "C2": "C"}, base)
        assert aliased.relation("C1").type == frozenset({"C1.id", "C1.t"})
        assert aliased.relation("C2").type == frozenset({"C2.id", "C2.t"})

    def test_check_disjoint(self):
        check_disjoint({"A"}, {"B"})
        with pytest.raises(SchemaError):
            check_disjoint({"A", "B"}, {"B"})


# ---------------------------------------------------------------------------
# RelationInstance
# ---------------------------------------------------------------------------
class TestRelationInstance:
    def _schema(self):
        return RelationSchema("A", ("x", "y"))

    def test_add_and_iterate(self):
        inst = RelationInstance(self._schema())
        t = base_tuple("A", "A:1", x=1, y=2)
        inst.add(t)
        assert list(inst) == [t]
        assert len(inst) == 1

    def test_type_mismatch_rejected(self):
        inst = RelationInstance(self._schema())
        with pytest.raises(SchemaError):
            inst.add(base_tuple("B", "B:1", x=1, y=2))

    def test_missing_tid_rejected(self):
        inst = RelationInstance(self._schema())
        with pytest.raises(SchemaError):
            inst.add(Tuple({"A.x": 1, "A.y": 2}))

    def test_duplicate_tid_rejected(self):
        inst = RelationInstance(self._schema())
        inst.add(base_tuple("A", "A:1", x=1, y=2))
        with pytest.raises(SchemaError):
            inst.add(base_tuple("A", "A:1", x=3, y=4))

    def test_by_tid(self):
        inst = RelationInstance(self._schema())
        t = base_tuple("A", "A:1", x=1, y=2)
        inst.add(t)
        assert inst.by_tid("A:1") is t
        with pytest.raises(UnknownRelationError):
            inst.by_tid("A:9")

    def test_requalified_rewrites_attrs_and_tids(self):
        inst = RelationInstance(self._schema())
        inst.add(base_tuple("A", "A:1", x=1, y=2))
        copy = inst.requalified("A2")
        (t,) = copy.tuples
        assert t.tid == "A2:1"
        assert t["A2.x"] == 1

    def test_requalified_same_alias_is_identity(self):
        inst = RelationInstance(self._schema())
        assert inst.requalified("A") is inst


# ---------------------------------------------------------------------------
# DatabaseInstance
# ---------------------------------------------------------------------------
class TestDatabaseInstance:
    def _instance(self):
        schema = DatabaseSchema.of(
            RelationSchema("A", ("x",)), RelationSchema("B", ("y",))
        )
        inst = DatabaseInstance(schema)
        inst.insert_values("A", "A:1", x=10)
        inst.insert_values("B", "B:1", y=20)
        return inst

    def test_relation_access(self):
        inst = self._instance()
        assert len(inst.relation("A")) == 1
        assert len(inst["B"]) == 1
        with pytest.raises(UnknownRelationError):
            inst.relation("C")

    def test_all_tuples_and_size(self):
        inst = self._instance()
        assert inst.size() == 2
        assert len(inst.all_tuples()) == 2

    def test_tuple_by_tid(self):
        inst = self._instance()
        assert inst.tuple_by_tid("A:1")["A.x"] == 10
        with pytest.raises(UnknownRelationError):
            inst.tuple_by_tid("A:9")

    def test_insert_values_qualifies(self):
        inst = self._instance()
        t = inst.insert_values("A", "A:2", x=99)
        assert t["A.x"] == 99

    def test_query_input_instance_self_join(self):
        schema = DatabaseSchema.of(RelationSchema("C", ("id",)))
        stored = DatabaseInstance(schema)
        stored.insert_values("C", "C:1", id=1)
        derived = query_input_instance(stored, {"C1": "C", "C2": "C"})
        assert derived.relation_names() == ("C1", "C2")
        t1 = derived.relation("C1").tuples[0]
        t2 = derived.relation("C2").tuples[0]
        # distinct qualified attributes AND distinct tuple ids
        assert t1.type == frozenset({"C1.id"})
        assert t2.type == frozenset({"C2.id"})
        assert t1.tid == "C1:1" and t2.tid == "C2:1"
        assert t1.lineage.isdisjoint(t2.lineage)
