"""Tests for the NedExplain algorithm (Sec. 3, Algorithms 1-3)."""

import pytest

from repro.errors import WhyNotQuestionError
from repro.core import (
    CTuple,
    NedExplain,
    NedExplainConfig,
    Predicate,
    nedexplain,
)
from repro.core.nedexplain import PHASES
from repro.relational import Var, var_cmp


# ---------------------------------------------------------------------------
# The paper's running example, end to end
# ---------------------------------------------------------------------------
class TestRunningExample:
    def test_tc1_detailed_answer(self, running_example):
        """Ex. 2.6: the detailed answer of tc1 is {(t4, Q3)}."""
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: Homer, ap: $x1), $x1 > 25)",
            database=db,
        )
        assert report.detailed == tuple(report.answers[0].detailed)
        (entry,) = report.detailed
        assert entry.tid == "A:a1"
        assert entry.subquery is canonical.node("m2")  # the selection

    def test_tc2_join_answer(self, running_example):
        """Sec. 1: the A-AB join prunes the only other author."""
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: $x), $x != Homer and $x != Sophocles)",
            database=db,
        )
        (entry,) = report.detailed
        assert entry.tid == "A:a3"  # Euripides
        assert entry.subquery is canonical.node("m0")

    def test_full_predicate_unions_answers(self, running_example):
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: Homer, ap: $x1), $x1 > 25)"
            " | ((A.name: $x2), $x2 != Homer and $x2 != Sophocles)",
            database=db,
        )
        assert len(report.answers) == 2
        assert set(report.condensed_labels) == {"m0", "m2"}

    def test_condensed_answer(self, running_example):
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: Homer, ap: $x1), $x1 > 25)",
            database=db,
        )
        assert report.answers[0].condensed_labels == ("m2",)

    def test_homer_price49_blamed_on_upper_join(self, running_example_db):
        """The motivating shortcoming (Sec. 1), asked on Q2 itself:
        why no tuple with Homer AND price 49?  NedExplain blames the
        uppermost join -- Homer is never associated with a price-49
        book, even though both values appear in Q2's output."""
        from repro.core import JoinPair, SPJASpec, canonicalize

        spec = SPJASpec(
            aliases={"A": "A", "AB": "AB", "B": "B"},
            joins=[JoinPair("A.aid", "AB.aid"), JoinPair("AB.bid", "B.bid")],
            projection=("A.name", "B.price"),
        )
        canonical = canonicalize(spec, running_example_db.schema)
        report = nedexplain(
            canonical,
            "(A.name: Homer, B.price: 49)",
            database=running_example_db,
        )
        blamed = {e.subquery for e in report.detailed}
        assert blamed == {canonical.node("m1")}  # the uppermost join
        tids = {e.tid for e in report.detailed}
        assert tids == {"A:a1", "B:b3"}

    def test_tabq_matches_table2(self, running_example):
        """The TabQ snapshot reproduces the structure of Table 2."""
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        engine.explain("((A.name: Homer, ap: $x1), $x1 > 25)")
        (tabq,) = engine.last_tabqs
        by_label = {entry.label: entry for entry in tabq}
        assert len(by_label["A"].compatibles) == 1
        assert len(by_label["m0"].compatibles) == 1
        assert len(by_label["m0"].output or []) == 3
        assert len(by_label["m1"].compatibles) == 2
        assert len(by_label["m2"].compatibles) == 2
        assert len(by_label["m2"].blocked) == 2
        # early termination: the aggregation node is never evaluated
        assert by_label["m3"].output is None

    def test_phase_times_recorded(self, running_example):
        db, canonical = running_example
        report = nedexplain(
            canonical, "(A.name: Euripides)", database=db
        )
        assert set(report.phase_times_ms) == set(PHASES)
        assert report.total_time_ms > 0


# ---------------------------------------------------------------------------
# Input handling and edge cases
# ---------------------------------------------------------------------------
class TestInputHandling:
    def test_accepts_ctuple_and_predicate(self, running_example):
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        tc = CTuple({"A.name": "Euripides"})
        assert not engine.explain(tc).is_empty()
        assert not engine.explain(Predicate.of(tc)).is_empty()

    def test_predicate_outside_target_type_rejected(self, running_example):
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        with pytest.raises(WhyNotQuestionError):
            engine.explain("(B.title: Odyssey)")

    def test_requires_exactly_one_source(self, running_example):
        db, canonical = running_example
        with pytest.raises(WhyNotQuestionError):
            NedExplain(canonical)
        with pytest.raises(WhyNotQuestionError):
            NedExplain(
                canonical,
                database=db,
                instance=db.input_instance(canonical.aliases),
            )

    def test_instance_input_works(self, running_example):
        db, canonical = running_example
        engine = NedExplain(
            canonical, instance=db.input_instance(canonical.aliases)
        )
        report = engine.explain("((A.name: Homer, ap: $x1), $x1 > 25)")
        assert report.condensed_labels == ("m2",)

    def test_no_compatible_data_flagged(self, running_example):
        db, canonical = running_example
        report = nedexplain(canonical, "(A.name: Zeus)", database=db)
        (answer,) = report.answers
        assert answer.no_compatible_data
        assert answer.is_empty()
        assert report.is_empty()

    def test_answer_not_missing_flagged(self, running_example):
        """Asking why (Sophocles, 49) is missing: it is not."""
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: Sophocles, ap: $x), $x = 49)",
            database=db,
        )
        (answer,) = report.answers
        assert answer.answer_not_missing

    def test_summary_renders(self, running_example):
        db, canonical = running_example
        report = nedexplain(
            canonical, "(A.name: Euripides)", database=db
        )
        text = report.summary()
        assert "m0" in text and "Euripides" in text


# ---------------------------------------------------------------------------
# Early termination (Alg. 2)
# ---------------------------------------------------------------------------
class TestEarlyTermination:
    def test_same_answers_with_and_without(self, running_example):
        db, canonical = running_example
        predicate = "((A.name: Homer, ap: $x1), $x1 > 25)"
        with_et = nedexplain(canonical, predicate, database=db)
        without = nedexplain(
            canonical,
            predicate,
            database=db,
            config=NedExplainConfig(early_termination=False),
        )
        assert [e.tid for e in with_et.detailed] == [
            e.tid for e in without.detailed
        ]
        assert with_et.condensed_labels == without.condensed_labels

    def test_disabled_evaluates_root(self, running_example):
        db, canonical = running_example
        engine = NedExplain(
            canonical,
            database=db,
            config=NedExplainConfig(early_termination=False),
        )
        engine.explain("((A.name: Homer, ap: $x1), $x1 > 25)")
        (tabq,) = engine.last_tabqs
        assert tabq.entry(canonical.root).output is not None

    def test_no_termination_while_traces_alive(self, running_example):
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        engine.explain("((A.name: Sophocles, ap: $x), $x = 49)")
        (tabq,) = engine.last_tabqs
        # Sophocles reaches the result: the whole tree is evaluated
        assert tabq.entry(canonical.root).output is not None


# ---------------------------------------------------------------------------
# Secondary answers (Def. 2.14)
# ---------------------------------------------------------------------------
class TestSecondaryAnswer:
    def test_empty_side_reported(self, running_example_db):
        """Ex. 2.7 rebuilt: an empty joined relation surfaces as the
        secondary answer at the subquery where the data vanishes."""
        from repro.core import JoinPair, SPJASpec, canonicalize

        db = running_example_db
        db.create_table("TOC", ["bid", "chapter"])  # empty relation
        spec = SPJASpec(
            aliases={"A": "A", "AB": "AB", "B": "B", "TOC": "TOC"},
            joins=[
                JoinPair("A.aid", "AB.aid"),
                JoinPair("AB.bid", "B.bid"),
                JoinPair("B.bid", "TOC.bid", "tbid"),
            ],
            projection=("A.name",),
        )
        canonical = canonicalize(spec, db.schema)
        report = nedexplain(canonical, "(A.name: Homer)", database=db)
        (answer,) = report.answers
        # Homer is blocked at the join starving on the empty TOC; the
        # empty relation and the empty join both surface as diagnostics
        blamed = {e.subquery.op for e in answer.detailed}
        assert blamed == {"join"}
        empty_labels = {n.name for n in answer.empty_outputs}
        assert "TOC" in empty_labels

    def test_secondary_excludes_picky_nodes(self):
        """Crime5: W and S die at the same join already blamed by the
        detailed answer; only the empty selection is secondary."""
        from repro.bench import run_use_case

        result = run_use_case("Crime5", run_baseline=False)
        (answer,) = result.ned.answers
        assert answer.secondary_labels == ("m2",)
        assert answer.condensed_labels == ("m3",)

    def test_secondary_disabled_by_config(self):
        from repro.bench import run_use_case

        result = run_use_case(
            "Crime5",
            run_baseline=False,
            config=NedExplainConfig(compute_secondary=False),
        )
        (answer,) = result.ned.answers
        assert answer.secondary == ()


# ---------------------------------------------------------------------------
# Aggregation condition (Def. 2.12, second part)
# ---------------------------------------------------------------------------
class TestAggregationCondition:
    def test_avg_condition_checked_at_selection(self, running_example):
        """Ex. 2.6: the data below Q3 satisfies avg > 25 (avg = 30),
        its empty output does not -- but since t4 itself is blocked at
        Q3, the (t4, Q3) pair subsumes the (null, Q3) entry."""
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: Homer, ap: $x1), $x1 > 25)",
            database=db,
        )
        (entry,) = report.detailed
        assert entry.tid == "A:a1"

    def test_null_entry_when_only_condition_flips(self, running_example):
        """Ask for an average Homer price above 40: the joins keep
        Homer alive, the selection erases him; with avg(45,15)=30 the
        input admits nothing above 40... so we ask >= 20 instead and
        tighten only at the selection."""
        db, canonical = running_example
        report = nedexplain(
            canonical,
            "((A.name: Homer, ap: $x), $x >= 20)",
            database=db,
        )
        # Homer is blocked at the selection -> (tid, m2); the agg
        # condition check does not duplicate it as (null, m2)
        tids = [e.tid for e in report.detailed]
        assert tids == ["A:a1"]
