"""Shared fixtures: the paper's running example and small databases."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core import SPJASpec, JoinPair, canonicalize
from repro.relational import AggregateCall, Database, attr_cmp

# Marker discipline: flag (and, under REPRO_ENFORCE_SLOW_MARKERS=1,
# fail) tests that run slow without @pytest.mark.slow/bench.  The
# hooks live in an importable module so test_marker_discipline.py can
# exercise them in a scratch pytest run.
from repro.pytest_slowguard import (  # noqa: F401
    pytest_configure,
    pytest_runtest_makereport,
    pytest_terminal_summary,
)

# Hypothesis profiles: "dev" (default) explores freely; "ci" is fixed
# (derandomized) so continuous-integration runs are reproducible.
# Select with HYPOTHESIS_PROFILE=ci.
hypothesis_settings.register_profile(
    "dev", deadline=None, print_blob=True
)
hypothesis_settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "dev")
)


@pytest.fixture()
def running_example_db() -> Database:
    """The database instance of the paper's Fig. 1(b).

    Author dates of birth are stored as negative years (800BC = -800).
    """
    db = Database("running-example")
    db.create_table("A", ["aid", "name", "dob"], key="aid")
    db.create_table("AB", ["aid", "bid"])
    db.create_table("B", ["bid", "title", "price"], key="bid")
    db.insert("A", aid="a1", name="Homer", dob=-800)        # t4
    db.insert("A", aid="a2", name="Sophocles", dob=-400)    # t5
    db.insert("A", aid="a3", name="Euripides", dob=-400)    # t6
    db.insert("AB", aid="a1", bid="b2")                     # t7
    db.insert("AB", aid="a1", bid="b1")                     # t8
    db.insert("AB", aid="a2", bid="b3")                     # t9
    db.insert("B", bid="b1", title="Odyssey", price=15)     # t1
    db.insert("B", bid="b2", title="Illiad", price=45)      # t2
    db.insert("B", bid="b3", title="Antigone", price=49)    # t3
    return db


@pytest.fixture()
def running_example_spec() -> SPJASpec:
    """The query of Fig. 1(a): average book price per recent author."""
    return SPJASpec(
        aliases={"A": "A", "AB": "AB", "B": "B"},
        joins=[JoinPair("A.aid", "AB.aid"), JoinPair("AB.bid", "B.bid")],
        selections=[attr_cmp("A.dob", ">", -800)],
        group_by=("A.name",),
        aggregates=(AggregateCall("avg", "B.price", "ap"),),
    )


@pytest.fixture()
def running_example(running_example_db, running_example_spec):
    """(database, canonical query) for the running example."""
    canonical = canonicalize(running_example_spec, running_example_db.schema)
    return running_example_db, canonical


@pytest.fixture()
def spj_example(running_example_db):
    """The SPJ core of the running example (no aggregation):
    pi_{A.name, B.price} of the three-way join with the dob filter."""
    spec = SPJASpec(
        aliases={"A": "A", "AB": "AB", "B": "B"},
        joins=[JoinPair("A.aid", "AB.aid"), JoinPair("AB.bid", "B.bid")],
        selections=[attr_cmp("A.dob", ">", -800)],
        projection=("A.name", "B.price"),
    )
    canonical = canonicalize(spec, running_example_db.schema)
    return running_example_db, canonical


@pytest.fixture()
def tiny_db() -> Database:
    """A two-table toy database for unit tests."""
    db = Database("tiny")
    db.create_table("R", ["id", "x", "y"], key="id")
    db.create_table("S", ["id", "x", "z"], key="id")
    db.insert("R", id=1, x="a", y=10)
    db.insert("R", id=2, x="b", y=20)
    db.insert("R", id=3, x="a", y=30)
    db.insert("S", id=1, x="a", z="p")
    db.insert("S", id=2, x="c", z="q")
    return db
