"""Unit tests for the SQL frontend (lexer, parser, translator)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.core import SPJASpec, UnionSpec, canonicalize
from repro.relational import Database
from repro.relational.sql import (
    parse_sql,
    sql_to_canonical,
    sql_to_spec,
    tokenize,
)
from repro.relational.sql.ast_nodes import (
    SelectAggregate,
    SelectColumn,
    SelectStatement,
    UnionStatement,
)


@pytest.fixture()
def schema(tiny_db):
    return tiny_db.schema


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select from where")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3

    def test_identifiers(self):
        (tok, _eof) = tokenize("my_table")
        assert tok.kind == "IDENT" and tok.text == "my_table"

    def test_aggregate_keywords(self):
        (tok, _eof) = tokenize("SUM")
        assert tok.kind == "AGG" and tok.text == "sum"

    def test_numbers(self):
        tokens = tokenize("42 3.14 -7")
        assert [t.text for t in tokens[:-1]] == ["42", "3.14", "-7"]

    def test_strings_both_quotes(self):
        tokens = tokenize("'a b' \"c\"")
        assert [t.text for t in tokens[:-1]] == ["a b", "c"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_symbols_and_diamond(self):
        tokens = tokenize("<> != <= >= < > = ( ) , . *")
        assert tokens[0].text == "!="  # <> normalized
        assert tokens[1].text == "!="

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n x")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "x"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class TestParser:
    def test_simple_select(self):
        stmt = parse_sql("SELECT R.x FROM R")
        assert isinstance(stmt, SelectStatement)
        assert isinstance(stmt.select_items[0], SelectColumn)
        assert stmt.tables[0].table == "R"

    def test_select_star(self):
        stmt = parse_sql("SELECT * FROM R")
        assert stmt.select_star

    def test_aliases(self):
        stmt = parse_sql("SELECT a.x FROM R a, S AS b")
        assert stmt.tables[0].effective_alias == "a"
        assert stmt.tables[1].effective_alias == "b"

    def test_where_conjunction(self):
        stmt = parse_sql(
            "SELECT R.x FROM R WHERE R.x = 1 AND R.y > 'a'"
        )
        assert len(stmt.where) == 2
        assert stmt.where[1].op == ">"

    def test_group_by_and_aggregate(self):
        stmt = parse_sql(
            "SELECT R.x, COUNT(R.y) AS c FROM R GROUP BY R.x"
        )
        agg = stmt.select_items[1]
        assert isinstance(agg, SelectAggregate)
        assert agg.function == "count" and agg.alias == "c"
        assert stmt.group_by[0].column == "x"

    def test_union(self):
        stmt = parse_sql("SELECT R.x FROM R UNION SELECT S.x FROM S")
        assert isinstance(stmt, UnionStatement)

    def test_union_all_accepted(self):
        stmt = parse_sql(
            "SELECT R.x FROM R UNION ALL SELECT S.x FROM S"
        )
        assert isinstance(stmt, UnionStatement)

    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT R.x")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT R.x FROM R extra nonsense ,")

    def test_bad_comparison(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT R.x FROM R WHERE R.x LIKE 'a'")


# ---------------------------------------------------------------------------
# Translation
# ---------------------------------------------------------------------------
class TestTranslate:
    def test_join_from_cross_alias_equality(self, schema):
        spec = sql_to_spec(
            "SELECT R.y FROM R, S WHERE R.x = S.x", schema
        )
        assert isinstance(spec, SPJASpec)
        assert len(spec.joins) == 1
        assert spec.joins[0].left == "R.x"
        assert spec.selections == []

    def test_same_alias_equality_is_selection(self, schema):
        spec = sql_to_spec(
            "SELECT R.y FROM R WHERE R.x = R.y", schema
        )
        assert spec.joins == []
        assert len(spec.selections) == 1

    def test_literal_comparison_is_selection(self, schema):
        spec = sql_to_spec("SELECT R.y FROM R WHERE R.y > 5", schema)
        assert len(spec.selections) == 1

    def test_literal_on_left_flipped(self, schema):
        spec = sql_to_spec("SELECT R.y FROM R WHERE 5 < R.y", schema)
        (cond,) = spec.selections
        assert ">" in repr(cond)

    def test_unqualified_column_resolved(self, schema):
        spec = sql_to_spec("SELECT y FROM R", schema)
        assert spec.projection == ("R.y",)

    def test_ambiguous_column_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT x FROM R, S", schema)

    def test_unknown_column_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT nope FROM R", schema)

    def test_unknown_table_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT x FROM Nope", schema)

    def test_unknown_alias_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT Z.x FROM R", schema)

    def test_duplicate_alias_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT R.x FROM R, R", schema)

    def test_self_join_with_aliases(self, schema):
        spec = sql_to_spec(
            "SELECT a.y FROM R a, R b WHERE a.x = b.x", schema
        )
        assert spec.aliases == {"a": "R", "b": "R"}
        assert len(spec.joins) == 1

    def test_aggregation(self, schema):
        spec = sql_to_spec(
            "SELECT R.x, SUM(R.y) AS total FROM R GROUP BY R.x",
            schema,
        )
        assert spec.group_by == ("R.x",)
        assert spec.aggregates[0].alias == "total"

    def test_aggregate_default_alias(self, schema):
        spec = sql_to_spec(
            "SELECT R.x, AVG(R.y) FROM R GROUP BY R.x", schema
        )
        assert spec.aggregates[0].alias == "avg_y"

    def test_non_grouped_plain_column_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec(
                "SELECT R.y, SUM(R.y) FROM R GROUP BY R.x", schema
            )

    def test_constant_conjunct_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT R.x FROM R WHERE 1 = 1", schema)

    def test_union_renaming_from_as(self, schema):
        spec = sql_to_spec(
            "SELECT R.y AS v FROM R UNION SELECT S.z FROM S", schema
        )
        assert isinstance(spec, UnionSpec)
        (triple,) = spec.renaming.triples
        assert triple.new == "v"
        assert triple.left == "R.y" and triple.right == "S.z"

    def test_union_width_mismatch(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec(
                "SELECT R.x, R.y FROM R UNION SELECT S.z FROM S",
                schema,
            )

    def test_sql_to_canonical_end_to_end(self, tiny_db):
        canonical = sql_to_canonical(
            "SELECT R.y, S.z FROM R, S WHERE R.x = S.x AND R.y > 5",
            tiny_db.schema,
        )
        from repro.relational import evaluate_query

        result = evaluate_query(canonical.root, tiny_db.instance())
        values = result.result_values()
        # R rows with y>5 joining S on x='a': (10,'p') and (30,'p')
        assert sorted(v["R.y"] for v in values) == [10, 30]

    def test_canonical_spj_pushes_selection_to_leaf(self, tiny_db):
        canonical = sql_to_canonical(
            "SELECT R.y FROM R, S WHERE R.x = S.x AND S.z = 'p'",
            tiny_db.schema,
        )
        rendered = canonical.pretty()
        # the selection sits below the join, just above the S leaf
        select_line = next(
            line for line in rendered.splitlines() if "sigma" in line
        )
        join_line = next(
            line for line in rendered.splitlines() if "join" in line
        )
        assert rendered.index(join_line) < rendered.index(select_line)


class TestExplicitJoinSyntax:
    def test_inner_join_on(self, schema):
        spec = sql_to_spec(
            "SELECT R.y FROM R INNER JOIN S ON R.x = S.x",
            schema,
        )
        assert len(spec.joins) == 1
        assert spec.joins[0].left == "R.x"

    def test_bare_join(self, schema):
        spec = sql_to_spec(
            "SELECT R.y FROM R JOIN S ON R.x = S.x AND S.z = 'p'",
            schema,
        )
        assert len(spec.joins) == 1
        assert len(spec.selections) == 1

    def test_join_with_aliases(self, schema):
        spec = sql_to_spec(
            "SELECT a.y FROM R a JOIN R b ON a.x = b.x",
            schema,
        )
        assert spec.aliases == {"a": "R", "b": "R"}

    def test_join_then_where(self, schema):
        spec = sql_to_spec(
            "SELECT R.y FROM R JOIN S ON R.x = S.x WHERE R.y > 5",
            schema,
        )
        assert len(spec.joins) == 1
        assert len(spec.selections) == 1

    def test_chained_joins(self, tiny_db):
        tiny_db2 = tiny_db  # reuse schema; chain S twice via aliases
        spec = sql_to_spec(
            "SELECT a.y FROM R a JOIN S b ON a.x = b.x "
            "JOIN S c ON b.z = c.z",
            tiny_db2.schema,
        )
        assert len(spec.joins) == 2

    def test_missing_on_rejected(self, schema):
        with pytest.raises(SqlSyntaxError):
            sql_to_spec("SELECT R.y FROM R JOIN S", schema)

    def test_join_query_runs_end_to_end(self, tiny_db):
        canonical = sql_to_canonical(
            "SELECT R.y, S.z FROM R JOIN S ON R.x = S.x",
            tiny_db.schema,
        )
        from repro.relational import evaluate_query

        result = evaluate_query(canonical.root, tiny_db.instance())
        assert sorted(v["R.y"] for v in result.result_values()) == [10, 30]
