"""Unit tests for Why-Not questions (Defs. 2.4-2.6) and their parser."""

import pytest

from repro.errors import WhyNotQuestionError
from repro.core import CTuple, Predicate, parse_predicate, why_not
from repro.core.whynot_question import ctuple_with_condition
from repro.relational import And, TrueCondition, Var, attr_cmp, var_cmp


# ---------------------------------------------------------------------------
# CTuple construction
# ---------------------------------------------------------------------------
class TestCTuple:
    def test_basic_entries(self):
        tc = CTuple({"A.name": "Homer", "ap": Var("x")})
        assert tc.type == frozenset({"A.name", "ap"})
        assert tc.constants() == {"A.name": "Homer"}
        assert tc.variable_entries() == {"ap": "x"}
        assert tc.variables() == frozenset({"x"})

    def test_empty_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            CTuple({})

    def test_default_condition_is_true(self):
        tc = CTuple({"A.name": "Homer"})
        assert isinstance(tc.condition, TrueCondition)

    def test_condition_over_unknown_variable_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            CTuple({"A.name": "Homer"}, var_cmp("x", ">", 25))

    def test_condition_with_attributes_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            CTuple({"A.name": Var("x")}, attr_cmp("A.name", "=", "y"))

    def test_entry_access(self):
        tc = CTuple({"A.name": "Homer"})
        assert tc.entry("A.name") == "Homer"
        assert "A.name" in tc
        with pytest.raises(WhyNotQuestionError):
            tc.entry("A.dob")

    def test_equality_and_hash(self):
        tc1 = CTuple({"A.x": 1}, TrueCondition())
        tc2 = CTuple({"A.x": 1})
        assert tc1 == tc2
        assert len({tc1, tc2}) == 1


class TestCTupleDerivations:
    def test_rename_attributes(self):
        tc = CTuple({"aid": "a1", "A.name": "Homer"})
        renamed = tc.rename_attributes({"aid": "A.aid"})
        assert renamed.type == frozenset({"A.aid", "A.name"})

    def test_rename_conflicting_collapse_rejected(self):
        tc = CTuple({"x": 1, "y": 2})
        with pytest.raises(WhyNotQuestionError):
            tc.rename_attributes({"x": "v", "y": "v"})

    def test_rename_consistent_collapse_allowed(self):
        tc = CTuple({"x": 1, "y": 1})
        renamed = tc.rename_attributes({"x": "v", "y": "v"})
        assert renamed.type == frozenset({"v"})

    def test_merge_disjoint(self):
        left = CTuple({"A.aid": "a1"}, )
        right = CTuple({"AB.aid": "a1"})
        merged = left.merged_with(right)
        assert merged is not None
        assert merged.type == frozenset({"A.aid", "AB.aid"})

    def test_merge_consistent_overlap(self):
        left = CTuple({"A.name": "Homer", "ap": Var("x")})
        right = CTuple({"A.name": "Homer"})
        merged = left.merged_with(right)
        assert merged is not None

    def test_merge_conflicting_overlap_returns_none(self):
        left = CTuple({"A.name": "Homer"})
        right = CTuple({"A.name": "Sophocles"})
        assert left.merged_with(right) is None

    def test_merge_deduplicates_conjuncts(self):
        cond = var_cmp("x", ">", 25)
        left = CTuple({"ap": Var("x")}, cond)
        right = CTuple({"ap": Var("x")}, cond)
        merged = left.merged_with(right)
        assert merged is not None
        assert merged.condition == cond

    def test_restricted_to(self):
        tc = CTuple(
            {"A.name": "Homer", "ap": Var("x")}, var_cmp("x", ">", 25)
        )
        only_name = tc.restricted_to({"A.name"})
        assert only_name is not None
        assert only_name.type == frozenset({"A.name"})
        # the condition on the dropped variable is gone
        assert isinstance(only_name.condition, TrueCondition)

    def test_restricted_to_nothing_returns_none(self):
        tc = CTuple({"A.name": "Homer"})
        assert tc.restricted_to({"B.title"}) is None


# ---------------------------------------------------------------------------
# Predicate
# ---------------------------------------------------------------------------
class TestPredicate:
    def test_disjunction(self):
        p = Predicate.of(CTuple({"A.x": 1}), CTuple({"A.x": 2}))
        assert len(p) == 2

    def test_empty_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            Predicate([])

    def test_validate_against(self, running_example):
        _db, canonical = running_example
        good = Predicate.of(CTuple({"A.name": "Homer"}))
        good.validate_against(canonical.root)
        bad = Predicate.of(CTuple({"B.title": "Odyssey"}))
        with pytest.raises(WhyNotQuestionError):
            bad.validate_against(canonical.root)

    def test_why_not_helper(self):
        p = why_not(P__name="Hank", C__type="Car theft")
        (tc,) = p.ctuples
        assert tc.type == frozenset({"P.name", "C.type"})


# ---------------------------------------------------------------------------
# Textual predicate parser
# ---------------------------------------------------------------------------
class TestParsePredicate:
    def test_simple_constants(self):
        p = parse_predicate("(P.name: Hank, C.type: 'Car theft')")
        (tc,) = p.ctuples
        assert tc.constants() == {
            "P.name": "Hank",
            "C.type": "Car theft",
        }

    def test_numeric_values(self):
        p = parse_predicate("(sponsorId: 467, w: 1.5)")
        (tc,) = p.ctuples
        assert tc.constants() == {"sponsorId": 467, "w": 1.5}

    def test_variable_with_condition(self):
        p = parse_predicate("((A.name: Homer, ap: $x1), $x1 > 25)")
        (tc,) = p.ctuples
        assert tc.variable_entries() == {"ap": "x1"}
        assert tc.condition == var_cmp("x1", ">", 25)

    def test_conjunction_of_conditions(self):
        p = parse_predicate(
            "((A.name: $x), $x != Homer and $x != Sophocles)"
        )
        (tc,) = p.ctuples
        assert tc.condition == And.of(
            var_cmp("x", "!=", "Homer"), var_cmp("x", "!=", "Sophocles")
        )

    def test_disjunction(self):
        p = parse_predicate("(name: Avatar) | (name: 'Up')")
        assert len(p) == 2

    def test_paper_example_2_1(self):
        text = (
            "((A.name: Homer, ap: $x1), $x1 > 25)"
            " | ((A.name: $x2), $x2 != Homer and $x2 != Sophocles)"
        )
        p = parse_predicate(text)
        assert len(p) == 2
        assert p.ctuples[0].constants() == {"A.name": "Homer"}

    def test_var_var_condition(self):
        p = parse_predicate("((a: $x, b: $y), $x < $y)")
        (tc,) = p.ctuples
        assert tc.condition.variables() == frozenset({"x", "y"})

    def test_pipe_inside_quotes_not_split(self):
        p = parse_predicate("(name: 'a|b')")
        (tc,) = p.ctuples
        assert tc.constants() == {"name": "a|b"}

    def test_missing_parens_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            parse_predicate("name: Hank")

    def test_missing_colon_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            parse_predicate("(name Hank)")

    def test_condition_must_start_with_variable(self):
        with pytest.raises(WhyNotQuestionError):
            parse_predicate("((a: $x), 25 > 3)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(WhyNotQuestionError):
            parse_predicate("((a: $x, $x > 3")

    def test_ctuple_with_condition_helper(self):
        tc = ctuple_with_condition({"ap": Var("x")}, x=(">", 25))
        assert tc.condition == var_cmp("x", ">", 25)
