"""Execution budgets, degraded answers, and fault-isolated batches.

The contract under test (docs/robustness.md):

* a :class:`~repro.robustness.Budget` is enforced cooperatively at the
  evaluator / compatible-set / successor tick points;
* ``NedExplain.explain`` never raises for budget exhaustion -- it
  returns an explicit *degraded* report (``report.partial``);
* an unlimited budget changes nothing observably (differential check);
* ``explain_each`` is total: N questions always yield N outcomes, one
  failing question never drops the rest;
* an aborted evaluation never leaves a partial entry in the shared
  :class:`~repro.relational.EvaluationCache`.
"""

from __future__ import annotations

import pytest

from repro.baseline import WhyNotBaseline
from repro.core import NedExplain, NedExplainConfig, canonicalize
from repro.errors import (
    BatchError,
    BudgetExceededError,
    ConfigurationError,
    InjectedFaultError,
    WhyNotQuestionError,
)
from repro.obs import ManualClock, use_clock
from repro.relational import EvaluationCache
from repro.robustness import (
    Budget,
    ExecutionContext,
    FailureInfo,
    FaultPlan,
    FaultSpec,
    QuestionOutcome,
    current_context,
    execution_context,
    inject,
)
from repro.workloads.generator import (
    chain_database,
    chain_predicate,
    chain_query,
)


@pytest.fixture()
def chain():
    """(database, canonical) for a small 3-relation chain join."""
    db = chain_database(3, rows_per_relation=20)
    canonical = canonicalize(chain_query(3), db.schema)
    return db, canonical


QUESTIONS = ["(R0.label: needle)", "(R0.label: r0v1)", "(R2.label: r2v3)"]


def answer_fingerprint(answer):
    return (
        repr(answer.ctuple),
        answer.detailed_pairs,
        answer.condensed_labels,
        answer.secondary_labels,
        answer.no_compatible_data,
        answer.answer_not_missing,
        answer.partial,
    )


def report_fingerprint(report):
    return (
        tuple(answer_fingerprint(a) for a in report.answers),
        report.partial,
        report.summary(),
    )


# ---------------------------------------------------------------------------
# Budget / ExecutionContext unit behaviour
# ---------------------------------------------------------------------------
class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().is_unlimited

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0},
            {"deadline_s": -1.5},
            {"max_rows": 0},
            {"max_rows": -3},
            {"max_comparisons": 0},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Budget(**kwargs)

    def test_rows_limit_enforced(self):
        context = ExecutionContext(Budget(max_rows=10))
        context.tick_rows(10)  # at the limit: fine
        with pytest.raises(BudgetExceededError) as info:
            context.tick_rows(1)
        assert info.value.resource == "rows"
        assert info.value.spent.rows == 11

    def test_comparisons_limit_enforced(self):
        context = ExecutionContext(Budget(max_comparisons=5))
        with pytest.raises(BudgetExceededError) as info:
            context.tick_comparisons(6)
        assert info.value.resource == "comparisons"
        assert info.value.spent.comparisons == 6

    def test_deadline_enforced(self):
        # deterministic: the clock is driven, not slept on
        clock = ManualClock()
        context = ExecutionContext(
            Budget(deadline_s=0.005), clock=clock
        )
        clock.advance(0.02)
        with pytest.raises(BudgetExceededError) as info:
            context.check_deadline()
        assert info.value.resource == "deadline"
        assert info.value.spent.elapsed_s == pytest.approx(0.02)

    def test_exhaustion_reports_phase(self):
        context = ExecutionContext(Budget(max_rows=1))
        context.phase = "BottomUp"
        with pytest.raises(BudgetExceededError) as info:
            context.tick_rows(2)
        assert info.value.phase == "BottomUp"

    def test_unlimited_context_never_raises(self):
        context = ExecutionContext()
        context.tick_rows(10**6)
        context.tick_comparisons(10**7)
        context.check_deadline()
        assert context.spent().rows == 10**6

    def test_ambient_context_installs_and_restores(self):
        assert current_context() is None
        context = ExecutionContext()
        with execution_context(context):
            assert current_context() is context
        assert current_context() is None


class TestInjectableClock:
    """The context reads time only through its injectable clock."""

    def test_context_captures_ambient_clock(self):
        clock = ManualClock(start=10.0)
        with use_clock(clock):
            context = ExecutionContext(Budget(deadline_s=1.0))
        # the captured clock keeps working outside the use_clock block
        clock.advance(0.25)
        assert context.spent().elapsed_s == pytest.approx(0.25)
        clock.advance(1.0)
        with pytest.raises(BudgetExceededError):
            context.check_deadline()

    def test_elapsed_is_exact_not_approximate(self):
        clock = ManualClock()
        context = ExecutionContext(clock=clock)
        clock.advance(1.234)
        assert context.spent().elapsed_s == 1.234

    def test_comparison_deadline_check_is_throttled(self):
        from repro.robustness.budget import DEADLINE_CHECK_EVERY

        clock = ManualClock()
        context = ExecutionContext(
            Budget(deadline_s=0.001), clock=clock
        )
        clock.advance(1.0)  # deadline long gone
        # below the throttle threshold: no clock read, no raise
        context.tick_comparisons(DEADLINE_CHECK_EVERY - 1)
        # crossing the threshold triggers the deferred check
        with pytest.raises(BudgetExceededError) as info:
            context.tick_comparisons(1)
        assert info.value.resource == "deadline"

    def test_row_ticks_always_check_deadline(self):
        clock = ManualClock()
        context = ExecutionContext(
            Budget(deadline_s=0.001), clock=clock
        )
        clock.advance(1.0)
        with pytest.raises(BudgetExceededError):
            context.tick_rows(1)


# ---------------------------------------------------------------------------
# Degraded NedExplain reports
# ---------------------------------------------------------------------------
class TestDegradedExplain:
    def test_exhausted_budget_returns_partial_report(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        report = engine.explain(
            chain_predicate(), budget=Budget(max_rows=3)
        )
        assert report.partial
        assert report.degraded_reason
        assert "PARTIAL RESULT" in report.summary()

    def test_comparison_budget_degrades_not_raises(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        report = engine.explain(
            chain_predicate(), budget=Budget(max_comparisons=1)
        )
        assert report.partial

    def test_generous_budget_is_observationally_free(self, chain):
        db, canonical = chain
        plain = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        ).explain(chain_predicate())
        budgeted = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        ).explain(
            chain_predicate(),
            budget=Budget(
                deadline_s=3600, max_rows=10**9, max_comparisons=10**9
            ),
        )
        assert not budgeted.partial
        assert report_fingerprint(budgeted) == report_fingerprint(plain)

    def test_config_budget_is_the_default(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical,
            database=db,
            config=NedExplainConfig(budget=Budget(max_rows=3)),
            cache=EvaluationCache(),
        )
        assert engine.explain(chain_predicate()).partial

    def test_mid_traversal_exhaustion_keeps_prefix(self, chain):
        """Exhaustion during the TabQ walk attaches the partial answer
        and the partially-filled TabQ."""
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        # generous enough to finish the shared evaluation and the
        # compatible sets, tight enough to die inside the entry loop
        full = engine.explain(chain_predicate())
        assert not full.partial
        hit_mid_traversal = False
        for limit in range(1, 200):
            report = engine.explain(
                chain_predicate(), budget=Budget(max_comparisons=limit)
            )
            if not report.partial:
                break  # the budget now covers the whole run
            if report.answers:
                hit_mid_traversal = True
                assert report.answers[-1].partial
                assert engine.last_tabqs  # the partial TabQ is kept
        assert hit_mid_traversal, (
            "no comparison limit landed inside the TabQ walk"
        )

    def test_injected_budget_fault_degrades(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        plan = FaultPlan(
            [FaultSpec("compatible.find", at_call=0, kind="budget")]
        )
        with inject(plan):
            report = engine.explain(chain_predicate())
        assert report.partial
        assert plan.fired


# ---------------------------------------------------------------------------
# Baseline under budget
# ---------------------------------------------------------------------------
class TestBaselineBudget:
    def test_baseline_budget_raises_cleanly(self, chain):
        db, canonical = chain
        baseline = WhyNotBaseline(
            canonical, database=db, cache=EvaluationCache()
        )
        with pytest.raises(BudgetExceededError):
            baseline.explain(chain_predicate(), budget=Budget(max_rows=3))

    def test_baseline_unlimited_budget_identical(self, chain):
        db, canonical = chain
        baseline = WhyNotBaseline(
            canonical, database=db, cache=EvaluationCache()
        )
        plain = baseline.explain(chain_predicate())
        budgeted = baseline.explain(
            chain_predicate(), budget=Budget(max_rows=10**9)
        )
        assert budgeted.answer_labels == plain.answer_labels
        assert budgeted.summary() == plain.summary()


# ---------------------------------------------------------------------------
# Fault-isolated batches
# ---------------------------------------------------------------------------
class TestExplainEach:
    def test_all_ok_matches_explain_many(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        outcomes = engine.explain_each(QUESTIONS)
        assert len(outcomes) == len(QUESTIONS)
        assert all(o.ok and not o.partial for o in outcomes)
        reports = engine.explain_many(QUESTIONS)
        for outcome, report in zip(outcomes, reports):
            assert report_fingerprint(
                outcome.report
            ) == report_fingerprint(report)

    def test_one_bad_question_does_not_drop_the_rest(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        questions = [QUESTIONS[0], "(Nope.x: 1)", QUESTIONS[2]]
        outcomes = engine.explain_each(questions)
        assert len(outcomes) == 3
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].failure.error_class == "WhyNotQuestionError"
        with pytest.raises(WhyNotQuestionError):
            outcomes[1].unwrap()

    def test_injected_fault_isolated_to_its_question(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        baseline_outcomes = engine.explain_each(QUESTIONS)
        # each chain question unrenames to one c-tuple -> one
        # compatible.find call per question: at_call=1 kills exactly
        # the second question
        plan = FaultPlan([FaultSpec("compatible.find", at_call=1)])
        with inject(plan):
            outcomes = engine.explain_each(QUESTIONS)
        assert len(outcomes) == 3
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].failure.error_class == "InjectedFaultError"
        assert isinstance(outcomes[1].error, InjectedFaultError)
        for index in (0, 2):
            assert report_fingerprint(
                outcomes[index].report
            ) == report_fingerprint(baseline_outcomes[index].report)

    def test_unexpected_exception_is_wrapped(self, chain, monkeypatch):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )

        def boom(tc):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(engine.finder, "find", boom)
        outcomes = engine.explain_each(QUESTIONS[:1])
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert outcomes[0].failure.error_class == "EvaluationError"
        assert isinstance(outcomes[0].error.__cause__, RuntimeError)

    def test_budgeted_batch_reports_partials_not_failures(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        outcomes = engine.explain_each(
            QUESTIONS, budget=Budget(max_rows=3)
        )
        assert len(outcomes) == len(QUESTIONS)
        assert all(o.ok for o in outcomes)
        assert all(o.partial for o in outcomes)

    def test_explain_many_raises_batcherror_with_all_outcomes(self, chain):
        db, canonical = chain
        engine = NedExplain(
            canonical, database=db, cache=EvaluationCache()
        )
        questions = [QUESTIONS[0], "(Nope.x: 1)", QUESTIONS[2]]
        with pytest.raises(BatchError) as info:
            engine.explain_many(questions)
        outcomes = info.value.outcomes
        assert len(outcomes) == 3
        assert outcomes[0].ok and outcomes[2].ok and not outcomes[1].ok


class TestOutcomeTypes:
    def test_outcome_requires_exactly_one_of_report_failure(self):
        failure = FailureInfo(error_class="X", message="boom")
        with pytest.raises(ValueError):
            QuestionOutcome(question="q")
        with pytest.raises(ValueError):
            QuestionOutcome(
                question="q", report=object(), failure=failure
            )

    def test_failure_info_describe(self):
        context = ExecutionContext()
        context.tick_rows(7)
        failure = FailureInfo.from_error(
            BudgetExceededError("out of rows", resource="rows"),
            phase="BottomUp",
            spent=context.spent(),
        )
        text = failure.describe()
        assert "BudgetExceededError" in text
        assert "phase=BottomUp" in text
        assert "rows=7" in text


# ---------------------------------------------------------------------------
# Cache must never retain partial results
# ---------------------------------------------------------------------------
class TestCachePartialGuard:
    def test_aborted_evaluation_not_cached(self, chain):
        db, canonical = chain
        cache = EvaluationCache()
        engine = NedExplain(canonical, database=db, cache=cache)
        report = engine.explain(
            chain_predicate(), budget=Budget(max_rows=3)
        )
        assert report.partial
        assert len(cache) == 0  # the aborted evaluation was dropped
        cache.check_invariants()
        # a later unbudgeted run stores the complete entry
        full = engine.explain(chain_predicate())
        assert not full.partial
        assert len(cache) == 1
        cache.check_invariants()

    def test_store_fault_drops_entry_keeps_counters(self, chain):
        db, canonical = chain
        cache = EvaluationCache()
        engine = NedExplain(canonical, database=db, cache=cache)
        plan = FaultPlan([FaultSpec("cache.store", at_call=0)])
        with inject(plan):
            outcomes = engine.explain_each(QUESTIONS[:1])
        assert not outcomes[0].ok
        assert len(cache) == 0
        assert cache.stats.evaluations == 1  # work done, entry dropped
        cache.check_invariants()
