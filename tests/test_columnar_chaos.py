"""Seeded chaos sweep with the columnar engine behind the evaluator.

Re-runs the fault-injection contract of ``test_chaos.py`` with
``use_columnar=True`` over 40 deterministic plans: faults fired inside
batch operators, cache interactions, and compatible-set computation
must degrade exactly like the row engine's -- contained ReproErrors or
partial reports, never wrong answers.  The fault-free oracle here is
the **row** engine, so isolation doubles as a cross-engine
differential: any outcome that completes un-degraded under faults must
match the row answer byte for byte.
"""

from __future__ import annotations

import pytest

from repro.core import NedExplain, NedExplainConfig, canonicalize
from repro.errors import ReproError
from repro.relational import EvaluationCache
from repro.robustness import FaultPlan, inject
from repro.workloads.generator import chain_database, chain_query

SEEDS = range(40)
QUESTIONS = ["(R0.label: needle)", "(R0.label: r0v1)", "(R2.label: r2v3)"]
COLUMNAR = NedExplainConfig(use_columnar=True)


def _setup():
    db = chain_database(3, rows_per_relation=12)
    canonical = canonicalize(chain_query(3), db.schema)
    return db, canonical


def _fingerprint(report):
    return (
        tuple(
            (
                repr(a.ctuple),
                a.detailed_pairs,
                a.condensed_labels,
                a.secondary_labels,
                a.no_compatible_data,
                a.answer_not_missing,
            )
            for a in report.answers
        ),
        report.summary(),
    )


def _outcome_shape(outcome):
    if outcome.ok:
        return ("ok", outcome.partial, _fingerprint(outcome.report))
    return ("failed", outcome.failure.error_class, outcome.failure.phase)


def _run_columnar(db, canonical, plan):
    cache = EvaluationCache()
    engine = NedExplain(
        canonical, database=db, cache=cache, config=COLUMNAR
    )
    if plan is None:
        return engine.explain_each(QUESTIONS), cache
    with inject(plan):
        return engine.explain_each(QUESTIONS), cache


_DB, _CANONICAL = _setup()
# The fault-free oracle comes from the ROW engine: isolation checks
# below are therefore also cross-engine differentials.
_ROW_ORACLE = NedExplain(_CANONICAL, database=_DB).explain_each(QUESTIONS)
_ORACLE_PRINTS = [_fingerprint(o.report) for o in _ROW_ORACLE]
_DATA_KEY = _DB.data_key


def test_fault_free_columnar_matches_row_oracle():
    outcomes, cache = _run_columnar(_DB, _CANONICAL, None)
    assert [_fingerprint(o.report) for o in outcomes] == _ORACLE_PRINTS
    cache.check_invariants()


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_seeded_fault_contract(seed):
    plan = FaultPlan.random(seed, faults=1 + seed % 3)
    outcomes, cache = _run_columnar(_DB, _CANONICAL, plan)

    # totality
    assert len(outcomes) == len(QUESTIONS)

    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            # isolation: an un-degraded columnar outcome must equal
            # the fault-free ROW answer
            if not outcome.partial:
                assert _fingerprint(outcome.report) == _ORACLE_PRINTS[
                    index
                ], f"seed {seed}: question {index} diverged"
            else:
                assert outcome.report.degraded_reason
        else:
            # containment
            assert isinstance(outcome.error, ReproError)
            assert outcome.failure is not None
            assert outcome.failure.error_class
            assert outcome.failure.message

    # invariants
    cache.check_invariants()
    assert _DB.data_key == _DATA_KEY, "a fault mutated the database"


@pytest.mark.parametrize("seed", [2, 19, 33])
def test_columnar_same_seed_is_deterministic(seed):
    first_plan = FaultPlan.random(seed, faults=2)
    second_plan = FaultPlan.random(seed, faults=2)
    first, _ = _run_columnar(_DB, _CANONICAL, first_plan)
    second, _ = _run_columnar(_DB, _CANONICAL, second_plan)
    assert [_outcome_shape(o) for o in first] == [
        _outcome_shape(o) for o in second
    ]
    assert first_plan.fired == second_plan.fired


def test_columnar_plans_actually_fire():
    fired = 0
    for seed in SEEDS:
        plan = FaultPlan.random(seed, faults=1 + seed % 3)
        _run_columnar(_DB, _CANONICAL, plan)
        fired += len(plan.fired)
    assert fired >= len(list(SEEDS)) // 3
