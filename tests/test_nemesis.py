"""The Jepsen-style nemesis harness over the replicated backend.

Each seed drives a real journaled batch (4 workers) against a
3-replica in-memory cluster while the nemesis partitions and kills
replicas on a deterministic schedule and the fault plan drops, delays,
and duplicates individual deliveries.  The checker then proves the
three replication invariants: no quorum-acked write is lost, no
sub-quorum write resurrects after repair, and healed replicas converge
byte-identically.  ``ok`` means *the invariants held* -- a batch
aborted by quorum loss is still a passing run as long as nothing
acked was lost.
"""

from __future__ import annotations

import json

import pytest

from repro.storage.nemesis import (
    NemesisEvent,
    main,
    nemesis_schedule,
    run_nemesis,
    transient_plan,
)

#: tier-1 sweep: a handful of seeds chosen to include quiet runs,
#: quorum-aborted batches, and repair-heavy runs (seed 6 aborts its
#: batch mid-way; seed 23 loses the result-document write)
FAST_SEEDS = (0, 3, 6, 14, 21, 23)


class TestSchedule:
    def test_schedule_is_deterministic(self):
        a = nemesis_schedule(7, ["0", "1", "2"])
        b = nemesis_schedule(7, ["0", "1", "2"])
        assert a == b
        assert a != nemesis_schedule(8, ["0", "1", "2"])

    def test_windows_never_overlap(self):
        # at most one replica is disturbed at a time, so a 3-replica
        # W=2 cluster always retains a reachable write quorum
        for seed in range(20):
            events = nemesis_schedule(seed, ["0", "1", "2"])
            cursor = -1
            for event in events:
                assert event.at_op > cursor
                cursor = event.at_op + event.duration
                assert event.action in ("partition", "kill")

    def test_transient_plan_is_deterministic(self):
        assert [
            (s.site, s.at_call) for s in transient_plan(3).specs
        ] == [(s.site, s.at_call) for s in transient_plan(3).specs]


class TestInvariants:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_invariants_hold(self, seed):
        result = run_nemesis(seed)
        assert result.violations == []
        # every question is accounted for: acked, or part of an
        # aborted batch (never silently dropped)
        if result.batch_error is None:
            assert len(result.acked_indexes) == 5

    def test_quorum_abort_is_a_passing_run(self):
        # seed 6 loses the append quorum mid-batch: the batch aborts
        # loudly, and the invariants still hold for what was acked
        result = run_nemesis(6)
        assert result.violations == []
        assert result.batch_error is not None
        assert "2 required replica acks" in result.batch_error

    def test_result_document_round_trips(self):
        result = run_nemesis(0)
        document = result.to_dict()
        json.dumps(document)  # artifact-serializable
        assert document["seed"] == 0
        assert document["ok"] is True
        assert len(document["events"]) == 3


class TestCli:
    def test_main_runs_seeds_and_exits_clean(self, capsys):
        assert main(["--seeds", "2", "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["seeds"] == 2
        assert document["failures"] == 0
        assert all(r["ok"] for r in document["results"])

    def test_artifacts_written_for_failures_only(self, tmp_path):
        code = main(
            ["--seeds", "2", "--artifact-dir", str(tmp_path)]
        )
        assert code == 0
        assert list(tmp_path.iterdir()) == []


@pytest.mark.slow
class TestAcceptance:
    def test_twenty_five_seeds(self):
        failures = []
        for seed in range(25):
            result = run_nemesis(seed)
            if not result.ok:
                failures.append((seed, result.violations))
        assert failures == []
