"""Property-based row-vs-columnar differential over random workloads.

Hypothesis drives the workload generator (chain shape, row counts,
join fanout, key skew, seed) and asserts the columnar engine is
observationally identical to the row oracle on whatever it draws:
per-node tuples and lineage, budget tick totals, and NedExplain
answers for both hit and miss predicates.  Shrinking then reports the
smallest diverging workload, which is far more diagnosable than a
failing Table 4 case.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import evaluate_columnar
from repro.core import NedExplain, NedExplainConfig, canonicalize
from repro.obs import Tracer, counter_values, tracing
from repro.relational import evaluate
from repro.robustness.budget import (
    Budget,
    ExecutionContext,
    execution_context,
)
from repro.workloads import chain_database, chain_predicate, chain_query

COLUMNAR = NedExplainConfig(use_columnar=True)

chain_shapes = st.tuples(
    st.integers(min_value=2, max_value=4),      # relations
    st.integers(min_value=1, max_value=16),     # rows per relation
    st.integers(min_value=1, max_value=3),      # join fanout
    st.integers(min_value=0, max_value=9999),   # generator seed
    st.sampled_from([0.0, 1.1, 2.0]),           # key skew (zipf)
)


def _build(shape):
    relations, rows, fanout, seed, zipf = shape
    database = chain_database(
        relations,
        rows_per_relation=rows,
        fanout=fanout,
        seed=seed,
        zipf=zipf,
    )
    canonical = canonicalize(chain_query(relations), database.schema)
    return database, canonical


def _traced(fn):
    tracer = Tracer()
    with tracing(tracer):
        with execution_context(ExecutionContext(Budget())):
            out = fn()
    return out, counter_values(tracer.metrics.snapshot())


def _node_key(tuples):
    return [(dict(t.values), t.lineage) for t in tuples]


def _answer_key(report):
    return tuple(
        (
            repr(a.ctuple),
            a.detailed_pairs,
            a.condensed_labels,
            a.secondary_labels,
            a.no_compatible_data,
            a.answer_not_missing,
        )
        for a in report.answers
    )


@settings(max_examples=40, deadline=None)
@given(shape=chain_shapes)
def test_engines_agree_on_random_chains(shape):
    database, canonical = _build(shape)
    instance = database.input_instance(canonical.aliases)

    row, row_counters = _traced(
        lambda: evaluate(canonical.root, instance)
    )
    col_result, col_counters = _traced(
        lambda: evaluate_columnar(canonical.root, instance)
    )
    col = col_result.row_view()

    for node in canonical.root.postorder():
        assert _node_key(row.output(node)) == _node_key(
            col.output(node)
        ), f"shape {shape}: divergence at {node.describe()}"
    col_counters.pop("evaluator.batches")
    assert col_counters == row_counters


@settings(max_examples=25, deadline=None)
@given(
    shape=chain_shapes,
    miss=st.integers(min_value=0, max_value=999),
)
def test_nedexplain_agrees_on_random_chains(shape, miss):
    database, canonical = _build(shape)
    relations = shape[0]
    predicates = [
        chain_predicate(),                       # the designated needle
        f"(R0.label: ghost{miss})",              # a value nowhere
        f"(R{relations - 1}.label: r{relations - 1}v{miss % 10})",
    ]

    oracle = NedExplain(canonical, database=database)
    engine = NedExplain(canonical, database=database, config=COLUMNAR)
    for predicate in predicates:
        expected = oracle.explain(predicate)
        got = engine.explain(predicate)
        assert _answer_key(got) == _answer_key(expected), (
            f"shape {shape}: divergence on {predicate}"
        )
        assert got.summary() == expected.summary()
