"""Debugging a data transformation: where did Hank go?

A walk through the crime workload (Sec. 4.1 of the paper) showing how
a developer uses the three answer granularities to debug a query --
and how the prior state of the art (Why-Not) would have misled them.

Covers use cases Crime5 (empty intermediate result) and Crime6
(self-join confusion).

Run with:  python examples/debug_missing_person.py
"""

from repro.baseline import WhyNotBaseline
from repro.core import NedExplain
from repro.relational import evaluate_query
from repro.workloads import use_case_setup


def investigate(name: str) -> None:
    use_case, db, canonical = use_case_setup(name)
    print("=" * 72)
    print(f"Use case {name}: query {use_case.query} on the "
          f"{use_case.database} database")
    print(f"Why-Not question: {use_case.predicate}")
    print()
    print(canonical.pretty())
    print()

    result = evaluate_query(
        canonical.root, db.instance(), canonical.aliases
    )
    print(f"Query returns {len(result.result_values())} rows "
          "-- but not the one we expected.")
    print()

    engine = NedExplain(canonical, database=db)
    report = engine.explain(use_case.predicate)
    print("NedExplain:")
    print(report.summary())

    # Peek into TabQ, the algorithm's working table (the paper's
    # Table 2), to see how the compatible traces thinned out.
    print()
    print("TabQ after the run:")
    print(engine.last_tabqs[0].dump())
    print()

    baseline = WhyNotBaseline(canonical, database=db)
    print("The Why-Not baseline says:", baseline.explain(
        use_case.predicate
    ).summary())
    print()


def main() -> None:
    # Crime5: Hank is missing.  The sector > 99 selection filters out
    # *every* crime, so the join above it starves.  NedExplain blames
    # the join (where Hank's trace actually dies) and surfaces the
    # empty selection as the secondary answer; the baseline reports
    # the selection alone and never mentions the join.
    investigate("Crime5")

    # Crime6: no witness of a kidnapping near an Aiding crime.  The
    # query self-joins Crime; the baseline places "compatible" tuples
    # in *both* aliases and ends up blaming the Aiding selection --
    # the one subquery that is certainly innocent.  NedExplain's
    # qualified attributes put the compatibles only in C2, and the
    # crime-crime join is correctly returned.
    investigate("Crime6")


if __name__ == "__main__":
    main()
