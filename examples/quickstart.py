"""Quickstart: the paper's running example, end to end.

Builds the database of Fig. 1(b), the query of Fig. 1(a) (via the SQL
frontend), evaluates it, and asks the Why-Not question of Ex. 1.1:

    "Why is there no tuple with author Homer and average price > 25,
     and no author other than Homer or Sophocles?"

Run with:  python examples/quickstart.py
"""

from repro import Database, NedExplain
from repro.relational.sql import sql_to_canonical
from repro.relational import evaluate_query


def build_database() -> Database:
    db = Database("running-example")
    db.create_table("A", ["aid", "name", "dob"], key="aid")
    db.create_table("AB", ["aid", "bid"])
    db.create_table("B", ["bid", "title", "price"], key="bid")
    # dates of birth stored as negative years: 800BC = -800
    db.insert("A", aid="a1", name="Homer", dob=-800)
    db.insert("A", aid="a2", name="Sophocles", dob=-400)
    db.insert("A", aid="a3", name="Euripides", dob=-400)
    db.insert("AB", aid="a1", bid="b2")
    db.insert("AB", aid="a1", bid="b1")
    db.insert("AB", aid="a2", bid="b3")
    db.insert("B", bid="b1", title="Odyssey", price=15)
    db.insert("B", bid="b2", title="Illiad", price=45)
    db.insert("B", bid="b3", title="Antigone", price=49)
    return db


def main() -> None:
    db = build_database()

    # The query of Fig. 1(a), written as SQL and canonicalized into
    # the tree of Fig. 1(c).
    canonical = sql_to_canonical(
        """
        SELECT A.name, AVG(B.price) AS ap
        FROM A, AB, B
        WHERE A.dob > -800 AND A.aid = AB.aid AND B.bid = AB.bid
        GROUP BY A.name
        """,
        db.schema,
    )
    print("Canonical query tree (breakpoint V marked with *):")
    print(canonical.pretty())
    print()

    result = evaluate_query(canonical.root, db.instance())
    print("Query result:", result.result_values())
    print()

    # The Why-Not question of Ex. 1.1 / Ex. 2.1.
    question = (
        "((A.name: Homer, ap: $x1), $x1 > 25)"
        " | ((A.name: $x2), $x2 != Homer and $x2 != Sophocles)"
    )
    print("Why-Not question:", question)
    print()

    engine = NedExplain(canonical, database=db)
    report = engine.explain(question)
    print("NedExplain answers:")
    print(report.summary())
    print()
    print(
        "Reading: the first c-tuple (Homer) was pruned by the"
        " selection on A.dob; the second (any other author) by the"
        " join between A and AB -- exactly the two query-based"
        " explanations of the paper's introduction."
    )


if __name__ == "__main__":
    main()
