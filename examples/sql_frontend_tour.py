"""Tour of the SQL frontend on a fresh, ad-hoc database.

Shows that the library is not tied to the paper's workloads: define
your own tables, write plain SQL (joins, selections, aggregation,
UNION), and ask why-not questions against it.

Run with:  python examples/sql_frontend_tour.py
"""

from repro import Database, NedExplain
from repro.relational import evaluate_query
from repro.relational.sql import sql_to_canonical


def build_shop() -> Database:
    db = Database("shop")
    db.create_table("products", ["pid", "pname", "category", "price"],
                    key="pid")
    db.create_table("orders", ["oid", "pid", "customer", "qty"],
                    key="oid")
    db.create_table("stores", ["sid", "sname", "city"], key="sid")
    db.create_table("stock", ["sid", "pid", "amount"])

    db.insert("products", pid=1, pname="lamp", category="home", price=40)
    db.insert("products", pid=2, pname="desk", category="office", price=250)
    db.insert("products", pid=3, pname="chair", category="office", price=90)
    db.insert("products", pid=4, pname="rug", category="home", price=120)

    db.insert("orders", oid=1, pid=1, customer="ada", qty=2)
    db.insert("orders", oid=2, pid=2, customer="grace", qty=1)
    db.insert("orders", oid=3, pid=2, customer="ada", qty=1)
    db.insert("orders", oid=4, pid=3, customer="alan", qty=4)

    db.insert("stores", sid=1, sname="downtown", city="Paris")
    db.insert("stores", sid=2, sname="mall", city="Orsay")
    db.insert("stock", sid=1, pid=1, amount=10)
    db.insert("stock", sid=1, pid=2, amount=0)
    db.insert("stock", sid=2, pid=3, amount=5)
    return db


def explain(db: Database, sql: str, question: str, note: str) -> None:
    print("=" * 72)
    print(sql.strip())
    canonical = sql_to_canonical(sql, db.schema)
    print()
    print(canonical.pretty())
    result = evaluate_query(canonical.root, db.instance())
    print("result:", result.result_values())
    print()
    print("why not", question, "?")
    report = NedExplain(canonical, database=db).explain(question)
    print(report.summary())
    print(f"({note})")
    print()


def main() -> None:
    db = build_shop()

    explain(
        db,
        """
        SELECT products.pname, stores.city
        FROM products, stock, stores
        WHERE products.pid = stock.pid AND stock.sid = stores.sid
          AND stock.amount > 0
        """,
        "(products.pname: desk, stores.city: Paris)",
        "the desk is stocked in Paris with amount 0: the selection "
        "blocks its stock row, starving the join",
    )

    explain(
        db,
        """
        SELECT products.category, SUM(orders.qty) AS sold
        FROM products, orders
        WHERE products.pid = orders.pid
        GROUP BY products.category
        """,
        "((products.category: home, sold: $q), $q >= 3)",
        "only one home product was ever ordered (qty 2): the join "
        "admits too few order rows for the sum to reach 3",
    )

    explain(
        db,
        """
        SELECT products.pname AS name FROM products
        WHERE products.category = 'office'
        UNION
        SELECT stores.sname FROM stores
        WHERE stores.city = 'Paris'
        """,
        "(name: rug)",
        "a union question is unrenamed into one c-tuple per branch; "
        "the rug fails the office filter, and no store is named rug",
    )


if __name__ == "__main__":
    main()
