"""Why-not provenance over aggregates: auditing earmark totals.

Aggregation is what NedExplain supports and the prior art does not
(the "n.a." rows of the paper's Table 5).  This example walks through
the two aggregate use cases:

* Crime9 -- "why is Betsy's crime count not above 8?"  The count *is*
  above 8 before the sector selection; NedExplain pinpoints the
  selection with a ``(null, sigma)`` answer (Def. 2.12, second part).
* Gov6 -- "why doesn't Bennett's earmark total equal 10870?"  The
  total is exactly 10870 until the substage filter drops one earmark.

Run with:  python examples/aggregation_audit.py
"""

from repro.baseline import WhyNotBaseline
from repro.core import NedExplain
from repro.errors import UnsupportedQueryError
from repro.relational import evaluate_query
from repro.workloads import use_case_setup


def audit(name: str, story: str) -> None:
    use_case, db, canonical = use_case_setup(name)
    print("=" * 72)
    print(f"Use case {name}: {story}")
    print(f"Question: {use_case.predicate}")
    print()
    print(canonical.pretty())
    print()

    result = evaluate_query(
        canonical.root, db.instance(), canonical.aliases
    )
    group_attr = sorted(
        a for a in canonical.root.target_type if "." in a
    )[0]
    print("Relevant result rows:")
    for row in result.result_values():
        if str(row.get(group_attr)) in use_case.predicate:
            print("  ", row)
    print()

    try:
        WhyNotBaseline(canonical, database=db)
    except UnsupportedQueryError as exc:
        print(f"Why-Not baseline: {exc}")
    print()

    report = NedExplain(canonical, database=db).explain(use_case.predicate)
    print("NedExplain:")
    print(report.summary())
    print()
    for answer in report.answers:
        for entry in answer.detailed:
            if entry.tid is None:
                print(
                    f"-> the aggregation condition holds on the input of "
                    f"{entry.subquery_label} but not on its output: "
                    f"{entry.subquery.describe()}"
                )
    print()


def main() -> None:
    audit(
        "Crime9",
        "Betsy is linked to 15 crimes, but only 7 lie in sectors > 80",
    )
    audit(
        "Gov6",
        "Bennett sponsored 10870 in earmarks, but only 10000 passed a "
        "Senate Committee stage",
    )


if __name__ == "__main__":
    main()
