"""From CSV files to a verified query fix, in one session.

The full practitioner loop the Nautilus project (which NedExplain is
part of) aims at: load data, run a query, notice something is missing,
get the picky operator, get a *repair proposal*, verify it, inspect
provenance — all without leaving Python.

Run with:  python examples/csv_repair_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    Database,
    NedExplain,
    explain_sql,
    load_database,
    save_database,
    sql_to_canonical,
    suggest_repairs,
    verify_repair,
)
from repro.relational import evaluate_query
from repro.relational.provenance import explain_derivations


def write_csvs(directory: Path) -> None:
    """Pretend these CSVs came from an export."""
    (directory / "employees.csv").write_text(
        "eid,name,dept,salary\n"
        "1,ada,research,9000\n"
        "2,grace,research,8400\n"
        "3,alan,engineering,8400\n"
        "4,edsger,engineering,7000\n"
    )
    (directory / "bonuses.csv").write_text(
        "bid,eid,amount\n"
        "1,1,500\n"
        "2,2,300\n"
        "3,4,800\n"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        write_csvs(directory)

        # 1. load: headers define the schema
        db = load_database(directory)
        print("loaded:", db)
        print()

        # 2. the query under suspicion: well-paid employees with a bonus
        sql = """
            SELECT employees.name, bonuses.amount
            FROM employees, bonuses
            WHERE employees.eid = bonuses.eid
              AND employees.salary > 8400
        """
        canonical = sql_to_canonical(sql, db.schema)
        result = evaluate_query(
            canonical.root, db.instance(), canonical.aliases
        )
        print("result:")
        for row in result.result_values():
            print("  ", row)
        print()

        # 3. why is grace missing?
        question = "(employees.name: grace)"
        engine = NedExplain(canonical, database=db)
        report = engine.explain(question)
        print("why not", question, "?")
        print(report.summary())
        print()

        # 4. propose and verify a fix
        for suggestion in suggest_repairs(engine, report):
            print("repair:", verify_repair(engine, suggestion))
        print()

        # 5. inspect how the present answers were derived
        print("how-provenance of the current result:")
        print(explain_derivations(result))
        print()

        # 6. one-call API for quick checks
        quick = explain_sql(db, sql, "(employees.name: edsger)")
        print("and why not edsger?")
        print(quick.summary())

        # 7. round-trip the database for colleagues
        save_database(db, directory / "export")
        again = load_database(directory / "export")
        print()
        print("re-exported and re-loaded:", again)


if __name__ == "__main__":
    main()
