"""Fig. 6 -- Why-Not vs NedExplain execution time per use case.

Benchmarks both algorithms on every use case (at scale factor 2 so the
tracing costs dominate the constant overheads) and registers the
runtime comparison.  The paper's shape claim: NedExplain is overall
faster, because the baseline traces each unpicked item independently
over the full intermediate results while NedExplain pushes all
compatible tuples through the tree in a single pass.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baseline import WhyNotBaseline
from repro.bench import runtime_payload, write_bench_artifact
from repro.core import NedExplain
from repro.errors import UnsupportedQueryError
from repro.workloads import USE_CASES, use_case_setup

from conftest import register_artefact

pytestmark = pytest.mark.bench

_SCALE = 2
_MEDIANS: dict[str, dict[str, float]] = {}


def _record(name: str, algorithm: str, benchmark) -> None:
    _MEDIANS.setdefault(name, {})[algorithm] = (
        statistics.median(benchmark.stats.stats.data) * 1000.0
    )


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_nedexplain_runtime(benchmark, name):
    use_case, database, canonical = use_case_setup(name, scale=_SCALE)
    engine = NedExplain(canonical, database=database)
    benchmark(engine.explain, use_case.predicate)
    _record(name, "ned", benchmark)


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_whynot_runtime(benchmark, name):
    use_case, database, canonical = use_case_setup(name, scale=_SCALE)
    try:
        engine = WhyNotBaseline(canonical, database=database)
    except UnsupportedQueryError:
        pytest.skip("aggregation: n.a. for the Why-Not baseline")
    benchmark(engine.explain, use_case.predicate)
    _record(name, "whynot", benchmark)


def test_register_figure(benchmark):
    def render() -> str:
        lines = [
            f"scale factor {_SCALE}; medians over benchmark rounds",
            f"{'Use case':<10}{'Why-Not(ms)':>12}{'Ned(ms)':>10}"
            f"{'speedup':>9}",
            "-" * 45,
        ]
        total_wn = total_ned = 0.0
        for uc in USE_CASES:
            medians = _MEDIANS.get(uc.name, {})
            ned = medians.get("ned")
            whynot = medians.get("whynot")
            if ned is None:
                continue
            total_ned += ned
            if whynot is None:
                lines.append(
                    f"{uc.name:<10}{'n.a.':>12}{ned:>10.2f}{'':>9}"
                )
            else:
                total_wn += whynot
                lines.append(
                    f"{uc.name:<10}{whynot:>12.2f}{ned:>10.2f}"
                    f"{whynot / ned:>8.1f}x"
                )
        lines.append("-" * 45)
        lines.append(
            f"{'TOTAL':<10}{total_wn:>12.2f}{total_ned:>10.2f}"
        )
        return "\n".join(lines)

    text = benchmark(render)
    register_artefact(
        "Fig. 6: Why-Not and NedExplain execution time", text
    )
    write_bench_artifact("runtime", runtime_payload(_MEDIANS, _SCALE))
