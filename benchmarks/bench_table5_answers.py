"""Table 5 -- Why-Not vs NedExplain answers per use case.

Benchmarks each use case end to end with NedExplain and regenerates
the answers table.  Qualitative sanity checks mirror the paper's
Sec. 4.2 observations (the integration tests assert them in depth;
here we only guard the headline contrasts so a broken benchmark is
caught immediately).
"""

from __future__ import annotations

import pytest

from repro.bench import render_table5, run_use_case
from repro.core import NedExplain
from repro.workloads import USE_CASES, use_case_setup

from conftest import register_artefact

pytestmark = pytest.mark.bench

_RESULTS = {}


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_use_case_answers(benchmark, name):
    """Time one NedExplain explanation; collect the answers."""
    use_case, database, canonical = use_case_setup(name)
    engine = NedExplain(canonical, database=database)
    report = benchmark(engine.explain, use_case.predicate)
    assert not any(a.answer_not_missing for a in report.answers)
    _RESULTS[name] = run_use_case(name)


def test_register_table(benchmark):
    results = benchmark(
        lambda: [_RESULTS.get(uc.name) or run_use_case(uc.name)
                 for uc in USE_CASES]
    )
    # headline contrasts of Sec. 4.2
    by_name = {r.use_case.name: r for r in results}
    assert by_name["Crime8"].whynot.is_empty()
    assert not by_name["Crime8"].ned.is_empty()
    assert by_name["Imdb2"].whynot.is_empty()
    assert by_name["Crime9"].whynot_na
    register_artefact(
        "Table 5: Why-Not and NedExplain answers",
        render_table5(results),
    )
