"""Fig. 5 -- phase-wise runtime distribution of NedExplain.

For every use case, accumulates the four phase timings
(Initialization, CompatibleFinder, SuccessorsFinder, Bottom-Up) over
repeated runs and registers the distribution table.  The paper's shape
claims: Initialization dominates the SPJ cases, SuccessorsFinder takes
over for SPJA cases.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    PhaseAccumulator,
    phases_payload,
    render_fig5,
    run_use_case,
    write_bench_artifact,
    write_sample_trace,
)
from repro.core import NedExplain
from repro.workloads import USE_CASES, use_case_setup

from conftest import register_artefact

pytestmark = pytest.mark.bench

_ACCUMULATED = {}


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_phase_distribution(benchmark, name):
    use_case, database, canonical = use_case_setup(name)
    engine = NedExplain(canonical, database=database)
    accumulator = PhaseAccumulator()

    def run():
        report = engine.explain(use_case.predicate)
        accumulator.add(report.phase_times_ms)
        return report

    benchmark(run)
    assert accumulator.grand_total_ms > 0
    _ACCUMULATED[name] = accumulator


def test_register_figure(benchmark):
    results = benchmark(
        lambda: [run_use_case(uc.name, run_baseline=False)
                 for uc in USE_CASES]
    )
    register_artefact(
        "Fig. 5: % time distribution over NedExplain phases",
        render_fig5(results),
    )
    write_bench_artifact("phases", phases_payload(results))
    write_sample_trace()
