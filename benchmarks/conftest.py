"""Shared infrastructure for the benchmark suite.

Benchmarks register rendered artefacts (the reproduced tables and
figures) in a session-wide registry; everything is printed after the
pytest-benchmark summary so a single

    pytest benchmarks/ --benchmark-only

run regenerates Table 3-5 and Figures 5-6 alongside the timing stats.
"""

from __future__ import annotations

import pytest

#: ordered artefact registry: title -> rendered text
ARTEFACTS: dict[str, str] = {}


def register_artefact(title: str, text: str) -> None:
    """Record a rendered table/figure for end-of-session printing."""
    ARTEFACTS[title] = text


@pytest.fixture(scope="session")
def artefacts():
    """Expose the registry to benchmarks."""
    return ARTEFACTS


def pytest_sessionfinish(session, exitstatus):
    if not ARTEFACTS:
        return
    print("\n")
    print("=" * 78)
    print("REPRODUCED EVALUATION ARTEFACTS")
    print("=" * 78)
    for title, text in ARTEFACTS.items():
        print()
        print(f"--- {title} ---")
        print(text)
