"""Ablation A1 -- runtime vs database scale (the parameter study the
paper defers to future work).

Sweeps the crime and gov databases over scale factors and a synthetic
chain-join workload over chain depths, benchmarking one NedExplain
explanation each.
"""

from __future__ import annotations

import statistics

import pytest

from repro.core import NedExplain, canonicalize
from repro.workloads import (
    chain_database,
    chain_predicate,
    chain_query,
    get_canonical,
    get_database,
    use_case_setup,
)

from conftest import register_artefact

pytestmark = pytest.mark.bench

_SCALES = (1, 2, 4, 8)
_DEPTHS = (2, 3, 4, 5)
_ROWS: dict[str, float] = {}


@pytest.mark.parametrize("scale", _SCALES)
def test_crime_scale(benchmark, scale):
    use_case, database, canonical = use_case_setup("Crime1", scale=scale)
    engine = NedExplain(canonical, database=database)
    benchmark(engine.explain, use_case.predicate)
    _ROWS[f"crime x{scale} ({database.size()} rows)"] = (
        statistics.median(benchmark.stats.stats.data) * 1000.0
    )


@pytest.mark.parametrize("scale", _SCALES)
def test_gov_scale(benchmark, scale):
    use_case, database, canonical = use_case_setup("Gov5", scale=scale)
    engine = NedExplain(canonical, database=database)
    benchmark(engine.explain, use_case.predicate)
    _ROWS[f"gov   x{scale} ({database.size()} rows)"] = (
        statistics.median(benchmark.stats.stats.data) * 1000.0
    )


@pytest.mark.parametrize("depth", _DEPTHS)
def test_chain_depth(benchmark, depth):
    database = chain_database(depth, rows_per_relation=120)
    canonical = canonicalize(chain_query(depth), database.schema)
    engine = NedExplain(canonical, database=database)
    benchmark(engine.explain, chain_predicate())
    _ROWS[f"chain depth {depth}"] = (
        statistics.median(benchmark.stats.stats.data) * 1000.0
    )


def test_register_table(benchmark):
    def render() -> str:
        lines = [
            f"{'configuration':<30}{'median (ms)':>12}",
            "-" * 42,
        ]
        for key, value in _ROWS.items():
            lines.append(f"{key:<30}{value:>12.2f}")
        return "\n".join(lines)

    text = benchmark(render)
    register_artefact("Ablation A1: runtime vs scale", text)
