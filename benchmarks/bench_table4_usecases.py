"""Table 4 -- the use cases (query + Why-Not predicate).

Benchmarks the per-use-case preprocessing pipeline (predicate parsing,
validation, unrenaming, CompatibleFinder) and registers the catalog.
"""

from __future__ import annotations

import pytest

from repro.bench import render_table4
from repro.core import CompatibleFinder, parse_predicate
from repro.core.unrename import unrename_predicate
from repro.workloads import USE_CASES, use_case_setup

from conftest import register_artefact

pytestmark = pytest.mark.bench


@pytest.mark.parametrize("name", [uc.name for uc in USE_CASES])
def test_preprocessing(benchmark, name):
    """Parse + unrename + find compatibles for one use case."""
    use_case, database, canonical = use_case_setup(name)
    instance = database.input_instance(canonical.aliases)
    finder = CompatibleFinder(instance, database, canonical.aliases)

    def preprocess():
        predicate = parse_predicate(use_case.predicate)
        predicate.validate_against(canonical.root)
        unrenamed = unrename_predicate(canonical.root, predicate)
        return [finder.find(tc) for tc in unrenamed]

    sets = benchmark(preprocess)
    assert sets


def test_register_catalog(benchmark):
    text = benchmark(render_table4)
    register_artefact("Table 4: use cases", text)
