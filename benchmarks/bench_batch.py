"""Batched why-not answering vs N independent runs.

The batch API (:meth:`NedExplain.explain_many` over a shared
:class:`EvaluationCache`) evaluates the query once and reuses the
Input/Output columns for every question; the per-question compatible
sets and blocked computations are all that remains.  This benchmark
demonstrates and *asserts* the two acceptance criteria:

* a batch of >= 10 questions performs exactly **one** full query
  evaluation (checked through the cache counters);
* the batch beats the same questions run as independent fresh engines
  on wall-clock time.

Runs both under pytest (``pytest benchmarks/bench_batch.py``) and as a
standalone script::

    PYTHONPATH=src python benchmarks/bench_batch.py [--smoke]

``--smoke`` shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import NedExplain, NedExplainConfig, canonicalize
from repro.relational import EvaluationCache
from repro.workloads import chain_database, chain_predicate, chain_query

import pytest

pytestmark = pytest.mark.bench


def build_workload(relations: int, rows: int):
    database = chain_database(
        relations, rows_per_relation=rows, fanout=2, seed=7
    )
    canonical = canonicalize(chain_query(relations), database.schema)
    last = relations - 1
    predicates = [f"(R0.label: r0v{i})" for i in range(10)]
    predicates.append(chain_predicate())
    predicates.append(f"(R{last}.label: r{last}v0)")
    return database, canonical, predicates


def run_batched(database, canonical, predicates):
    cache = EvaluationCache()
    engine = NedExplain(canonical, database=database, cache=cache)
    started = time.perf_counter()
    reports = engine.explain_many(predicates)
    elapsed = time.perf_counter() - started
    return reports, cache, elapsed


def run_parallel(database, canonical, predicates, workers: int):
    """The same batch through the supervised parallel executor."""
    cache = EvaluationCache()
    engine = NedExplain(canonical, database=database, cache=cache)
    started = time.perf_counter()
    outcomes = engine.explain_each(predicates, workers=workers)
    elapsed = time.perf_counter() - started
    reports = [outcome.unwrap() for outcome in outcomes]
    return reports, cache, elapsed


def run_independent(database, canonical, predicates):
    config = NedExplainConfig(use_shared_evaluation=False)
    started = time.perf_counter()
    reports = []
    for predicate in predicates:
        engine = NedExplain(
            canonical, database=database, config=config
        )
        reports.append(engine.explain(predicate))
    elapsed = time.perf_counter() - started
    return reports, elapsed


def run_comparison(
    relations: int, rows: int, verbose: bool = True, workers: int = 1
):
    database, canonical, predicates = build_workload(relations, rows)

    # warm-up so neither side pays first-touch costs (lazy indexes)
    run_independent(database, canonical, predicates[:1])

    batched, cache, batch_time = run_batched(
        database, canonical, predicates
    )
    independent, solo_time = run_independent(
        database, canonical, predicates
    )

    assert len(predicates) >= 10
    assert cache.stats.evaluations == 1, (
        f"batch of {len(predicates)} questions performed "
        f"{cache.stats.evaluations} full evaluations, expected 1"
    )
    assert cache.stats.hits == len(predicates) - 1
    for got, expected in zip(batched, independent):
        assert got.summary() == expected.summary(), (
            "batched and independent runs disagree"
        )
    assert batch_time < solo_time, (
        f"batch ({batch_time * 1000:.1f} ms) did not beat "
        f"{len(predicates)} independent runs "
        f"({solo_time * 1000:.1f} ms)"
    )

    parallel_time = None
    if workers > 1:
        # parallel sanity: same answers, still one shared evaluation
        parallel, pcache, parallel_time = run_parallel(
            database, canonical, predicates, workers
        )
        assert pcache.stats.evaluations == 1, (
            f"parallel batch performed {pcache.stats.evaluations} "
            "full evaluations, expected 1 (single-flight cache)"
        )
        for got, expected in zip(parallel, batched):
            assert got.summary() == expected.summary(), (
                "parallel and sequential batches disagree"
            )

    if verbose:
        speedup = solo_time / batch_time
        print(
            f"chain depth {relations}, {database.size()} rows, "
            f"{len(predicates)} questions"
        )
        print(
            f"  batched     : {batch_time * 1000:8.1f} ms   "
            f"({cache.stats.evaluations} evaluation, "
            f"{cache.stats.hits} cache hits)"
        )
        print(f"  independent : {solo_time * 1000:8.1f} ms")
        print(f"  speedup     : {speedup:8.2f}x")
        if parallel_time is not None:
            print(
                f"  parallel    : {parallel_time * 1000:8.1f} ms   "
                f"({workers} workers, answers identical)"
            )
    return batch_time, solo_time


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_batch_single_evaluation_and_speedup():
    run_comparison(relations=3, rows=60, verbose=False)


def test_batch_smoke():
    run_comparison(relations=2, rows=30, verbose=False)


def test_batch_parallel_matches_sequential():
    run_comparison(relations=2, rows=30, verbose=False, workers=4)


# ---------------------------------------------------------------------------
# standalone entry point
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI smoke runs",
    )
    parser.add_argument("--relations", type=int, default=4)
    parser.add_argument("--rows", type=int, default=150)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also run the batch through the parallel executor and "
        "assert it matches the sequential answers",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        relations, rows = 3, 40
    else:
        relations, rows = args.relations, args.rows
    run_comparison(relations, rows, verbose=True, workers=args.workers)
    print("ok: 1 full evaluation, batched beat independent runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
