"""Table 3 -- the use-case queries.

Benchmarks canonicalization of each query of Table 3 and registers the
query catalog (with canonical trees and breakpoints) for printing.
"""

from __future__ import annotations

import pytest

from repro.bench import render_table3
from repro.core import canonicalize
from repro.workloads import QUERIES, get_database

from conftest import register_artefact

pytestmark = pytest.mark.bench

QUERY_NAMES = sorted(QUERIES, key=lambda q: (len(q), q))


@pytest.mark.parametrize("query", QUERY_NAMES)
def test_canonicalize(benchmark, query):
    """Time the canonicalization of one Table 3 query."""
    db_name, builder = QUERIES[query]
    schema = get_database(db_name).schema
    canonical = benchmark(lambda: canonicalize(builder(), schema))
    assert canonical.root is not None


def test_register_catalog(benchmark):
    """Render the full catalog (and time the rendering)."""
    text = benchmark(render_table3)
    register_artefact("Table 3: use case queries (canonical trees)", text)
