"""Ablation A3 -- checkEarlyTermination (Alg. 2) on vs off.

The paper stops the bottom-up pass as soon as no compatible trace can
survive; this ablation measures what the optimization buys (and the
tests assert it never changes the answers).
"""

from __future__ import annotations

import statistics

import pytest

from repro.core import NedExplain, NedExplainConfig
from repro.workloads import USE_CASES, use_case_setup

from conftest import register_artefact

pytestmark = pytest.mark.bench

_MEDIANS: dict[str, dict[str, float]] = {}

#: use cases whose compatible traces die early (where Alg. 2 helps)
_CASES = [uc.name for uc in USE_CASES]


@pytest.mark.parametrize("name", _CASES)
@pytest.mark.parametrize("early", [True, False], ids=["on", "off"])
def test_early_termination(benchmark, name, early):
    use_case, database, canonical = use_case_setup(name)
    engine = NedExplain(
        canonical,
        database=database,
        config=NedExplainConfig(early_termination=early),
    )
    report = benchmark(engine.explain, use_case.predicate)
    _MEDIANS.setdefault(name, {})[
        "on" if early else "off"
    ] = statistics.median(benchmark.stats.stats.data) * 1000.0
    assert report is not None


def test_register_table(benchmark):
    def render() -> str:
        lines = [
            f"{'Use case':<10}{'ET on (ms)':>12}{'ET off (ms)':>13}"
            f"{'saved':>8}",
            "-" * 45,
        ]
        for name in _CASES:
            medians = _MEDIANS.get(name, {})
            if "on" not in medians or "off" not in medians:
                continue
            saved = 100.0 * (1 - medians["on"] / medians["off"])
            lines.append(
                f"{name:<10}{medians['on']:>12.3f}"
                f"{medians['off']:>13.3f}{saved:>7.0f}%"
            )
        return "\n".join(lines)

    text = benchmark(render)
    register_artefact(
        "Ablation A3: early termination (Alg. 2) on vs off", text
    )
