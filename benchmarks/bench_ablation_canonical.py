"""Ablation A2 -- the canonicalization rationale of Sec. 3.1, step 2b.

For the aggregate query Q8 (use case Crime9), compares the paper's
canonical tree (selection placed *above* the breakpoint V) against the
classic optimizer placement (selection pushed down to the Crime leaf).

The canonical placement is what makes the aggregation-condition check
possible: with the selection below V, the count never flips between a
subquery's input and output, and the ``(null, sigma)`` explanation of
Crime9 is lost entirely -- the ablation registers both answers next to
the timings.
"""

from __future__ import annotations

import statistics

from repro.core import NedExplain, canonical_from_tree
from repro.core.canonical import CanonicalQuery
from repro.relational import (
    Aggregate,
    AggregateCall,
    Join,
    RelationLeaf,
    Renaming,
    Select,
    assign_labels,
    attr_cmp,
)
from repro.workloads import get_canonical, get_database

from conftest import register_artefact

import pytest

pytestmark = pytest.mark.bench

_PREDICATE = "((Person.name: Betsy, ct: $x), $x > 8)"
_RESULTS: dict[str, tuple[str, float]] = {}


def _pushed_down_variant() -> CanonicalQuery:
    """Q8 with sigma_{sector>80} pushed below the joins (non-canonical)."""
    db = get_database("crime")
    person = RelationLeaf(db.table("Person").schema)
    saw = RelationLeaf(db.table("Saw").schema)
    witness = RelationLeaf(db.table("Witness").schema)
    crime = Select(
        RelationLeaf(db.table("Crime").schema),
        attr_cmp("Crime.sector", ">", 80),
    )
    join0 = Join(
        person,
        saw,
        Renaming.of(
            ("Person.hair", "Saw.hair", "hair"),
            ("Person.clothes", "Saw.clothes", "clothes"),
        ),
    )
    join1 = Join(
        join0, witness, Renaming.of(("Saw.witnessName", "Witness.name",
                                     "witnessName"))
    )
    join2 = Join(
        join1, crime, Renaming.of(("Witness.sector", "Crime.sector",
                                   "sector"))
    )
    root = Aggregate(
        join2, ("Person.name",), (AggregateCall("count", "Crime.type",
                                                "ct"),)
    )
    return canonical_from_tree(root)


def _run(benchmark, canonical, key):
    db = get_database("crime")
    engine = NedExplain(canonical, database=db)
    report = benchmark(engine.explain, _PREDICATE)
    rendered = (
        ", ".join(repr(e) for e in report.detailed) or "(no answer)"
    )
    _RESULTS[key] = (
        rendered,
        statistics.median(benchmark.stats.stats.data) * 1000.0,
    )
    return report


def test_canonical_placement(benchmark):
    report = _run(benchmark, get_canonical("Q8"), "canonical (above V)")
    # the canonical tree explains the missing count: (null, sigma)
    assert any(e.tid is None for e in report.detailed)


def test_pushed_down_placement(benchmark):
    report = _run(benchmark, _pushed_down_variant(), "pushed down")
    # the classic placement loses the aggregation explanation
    assert report.is_empty()


def test_register_table(benchmark):
    def render() -> str:
        lines = [
            "Crime9 under the two selection placements of Q8",
            f"{'placement':<22}{'median (ms)':>12}  answer",
            "-" * 70,
        ]
        for key, (answer, ms) in _RESULTS.items():
            lines.append(f"{key:<22}{ms:>12.3f}  {answer}")
        return "\n".join(lines)

    text = benchmark(render)
    register_artefact(
        "Ablation A2: canonical selection placement (Sec. 3.1-2b)", text
    )
