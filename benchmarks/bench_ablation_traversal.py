"""Ablation A4 -- bottom-up vs top-down Why-Not traversal.

The original Why-Not paper proposes both orders and our Sec. 4 summary
quotes: "the main difference between the two approaches lies in the
efficiency of the algorithms (depending on the query and the Why-Not
question)".  This ablation measures that difference on our workloads:
top-down settles surviving items with one lookup at the root, while
bottom-up pays per level until the item dies -- and vice versa for
items that die early.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baseline import WhyNotBaseline
from repro.errors import UnsupportedQueryError
from repro.workloads import USE_CASES, use_case_setup

from conftest import register_artefact

pytestmark = pytest.mark.bench

_MEDIANS: dict[str, dict[str, float]] = {}
_CASES = [
    uc.name
    for uc in USE_CASES
    if uc.query not in ("Q8", "Q9")  # aggregation: baseline n.a.
]


@pytest.mark.parametrize("name", _CASES)
@pytest.mark.parametrize(
    "strategy", ["bottom-up", "top-down"], ids=["bu", "td"]
)
def test_traversal(benchmark, name, strategy):
    use_case, database, canonical = use_case_setup(name)
    try:
        engine = WhyNotBaseline(
            canonical, database=database, strategy=strategy
        )
    except UnsupportedQueryError:
        pytest.skip("unsupported query class")
    report = benchmark(engine.explain, use_case.predicate)
    _MEDIANS.setdefault(name, {})[strategy] = (
        statistics.median(benchmark.stats.stats.data) * 1000.0
    )
    assert report is not None


def test_answers_identical(benchmark):
    """The original paper's claim: both traversals return the same
    answers."""

    def check() -> int:
        checked = 0
        for name in _CASES:
            use_case, database, canonical = use_case_setup(name)
            bottom_up = WhyNotBaseline(
                canonical, database=database
            ).explain(use_case.predicate)
            top_down = WhyNotBaseline(
                canonical, database=database, strategy="top-down"
            ).explain(use_case.predicate)
            assert bottom_up.answer_labels == top_down.answer_labels
            checked += 1
        return checked

    assert benchmark(check) == len(_CASES)


def test_register_table(benchmark):
    def render() -> str:
        lines = [
            f"{'Use case':<10}{'bottom-up (ms)':>15}"
            f"{'top-down (ms)':>15}",
            "-" * 40,
        ]
        for name in _CASES:
            medians = _MEDIANS.get(name, {})
            if len(medians) < 2:
                continue
            lines.append(
                f"{name:<10}{medians['bottom-up']:>15.3f}"
                f"{medians['top-down']:>15.3f}"
            )
        return "\n".join(lines)

    text = benchmark(render)
    register_artefact(
        "Ablation A4: Why-Not traversal order (same answers, "
        "different cost)",
        text,
    )
